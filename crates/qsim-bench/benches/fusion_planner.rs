//! Fusion-strategy sweep: greedy vs cost-model planning vs autotuned
//! fusion budgets on RQCs, across the paper's backends. For every
//! `(circuit, backend)` pair the bench plans with `Greedy` and `Cost` at
//! each fusion budget f ∈ 2..=6 plus one `Auto` plan, prices each plan on
//! the backend's modeled device timeline (`estimate_plan` — a dry run, so
//! the 24–26 qubit circuits never allocate state), and records everything
//! in `results/fusion_planner.csv` plus a `BENCH_fusion.json` summary at
//! the repository root.
//!
//! Two acceptance properties are asserted on the modeled times:
//! - `Cost` is never more than 2 % slower than `Greedy` at the same
//!   fusion budget (the planner may only decline harmful merges);
//! - `Auto` matches or beats the best fixed budget on at least one
//!   `(circuit, backend)` configuration.
//!
//! Full-size runs (24- and 26-qubit RQCs) happen under `cargo bench`;
//! plain `cargo test` smoke-runs a 16-qubit circuit.

use std::fmt::Write as _;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use qsim_backends::{Flavor, FusionStrategy, PlanOptions, SimBackend};
use qsim_circuit::{generate_rqc, RqcOptions};
use qsim_core::kernels::MAX_GATE_QUBITS;
use qsim_core::types::Precision;
use serde_json::json;

const BACKENDS: [Flavor; 3] = [Flavor::Hip, Flavor::Cuda, Flavor::CpuAvx];
const FUSION_BUDGETS: std::ops::RangeInclusive<usize> = 2..=MAX_GATE_QUBITS;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// One planned-and-priced configuration.
struct Row {
    qubits: usize,
    cycles: usize,
    backend: &'static str,
    strategy: FusionStrategy,
    /// The budget handed to the planner (`Auto` ignores it).
    requested_max_fused: usize,
    /// The budget the plan actually carries (`Auto`'s pick).
    chosen_max_fused: usize,
    fused_gates: usize,
    predicted_cost_seconds: f64,
    modeled_seconds: f64,
}

fn bench_fusion_planner(c: &mut Criterion) {
    let sizes: &[(usize, usize)] = if bench_mode() { &[(24, 14), (26, 14)] } else { &[(16, 8)] };
    let mut group = c.benchmark_group("fusion_planner");
    group.sample_size(10);

    let mut rows: Vec<Row> = Vec::new();
    for &(n, cycles) in sizes {
        let circuit = generate_rqc(&RqcOptions::for_qubits(n, cycles, 1));
        for flavor in BACKENDS {
            let backend = SimBackend::new(flavor);

            // Planner wall time is the new host-side cost this bench
            // guards; one criterion measurement per strategy at f=4.
            for strategy in FusionStrategy::ALL {
                let id = BenchmarkId::new(format!("plan/{}/{}", flavor.label(), strategy), n);
                group.bench_with_input(id, &circuit, |b, circ| {
                    let opts = PlanOptions { strategy, max_fused_qubits: 4 };
                    b.iter(|| backend.plan_circuit(circ, &opts, Precision::Single));
                });
            }

            for max_fused in FUSION_BUDGETS {
                for strategy in [FusionStrategy::Greedy, FusionStrategy::Cost] {
                    let opts = PlanOptions { strategy, max_fused_qubits: max_fused };
                    let plan = backend.plan_circuit(&circuit, &opts, Precision::Single);
                    let report =
                        backend.estimate_plan(&plan, Precision::Single).expect("estimate plan");
                    rows.push(Row {
                        qubits: n,
                        cycles,
                        backend: flavor.label(),
                        strategy,
                        requested_max_fused: max_fused,
                        chosen_max_fused: plan.fused.max_fused_qubits,
                        fused_gates: plan.fused.stats().fused_gates,
                        predicted_cost_seconds: plan.predicted_cost_seconds,
                        modeled_seconds: report.simulated_seconds,
                    });
                }
            }
            let opts = PlanOptions { strategy: FusionStrategy::Auto, max_fused_qubits: 2 };
            let plan = backend.plan_circuit(&circuit, &opts, Precision::Single);
            let report = backend.estimate_plan(&plan, Precision::Single).expect("estimate plan");
            rows.push(Row {
                qubits: n,
                cycles,
                backend: flavor.label(),
                strategy: FusionStrategy::Auto,
                requested_max_fused: 2,
                chosen_max_fused: plan.fused.max_fused_qubits,
                fused_gates: plan.fused.stats().fused_gates,
                predicted_cost_seconds: plan.predicted_cost_seconds,
                modeled_seconds: report.simulated_seconds,
            });
        }
    }
    group.finish();

    let auto_wins = check_acceptance(&rows);
    write_csv(&rows).expect("cannot write results CSV");
    write_summary(&rows, &auto_wins).expect("cannot write BENCH_fusion.json");
}

/// Assert the two acceptance properties; returns the configurations where
/// `Auto` matched or beat every fixed budget.
fn check_acceptance(rows: &[Row]) -> Vec<String> {
    let find = |n: usize, backend: &str, strategy: FusionStrategy, f: usize| {
        rows.iter()
            .find(|r| {
                r.qubits == n
                    && r.backend == backend
                    && r.strategy == strategy
                    && r.requested_max_fused == f
            })
            .expect("config present")
    };

    let mut auto_wins = Vec::new();
    for row in rows.iter().filter(|r| r.strategy == FusionStrategy::Auto) {
        let mut best_fixed = f64::INFINITY;
        for f in FUSION_BUDGETS {
            let greedy = find(row.qubits, row.backend, FusionStrategy::Greedy, f);
            let cost = find(row.qubits, row.backend, FusionStrategy::Cost, f);
            assert!(
                cost.modeled_seconds <= greedy.modeled_seconds * 1.02,
                "{}/q{} f={f}: cost plan modeled {:.6e}s vs greedy {:.6e}s (> +2%)",
                row.backend,
                row.qubits,
                cost.modeled_seconds,
                greedy.modeled_seconds
            );
            best_fixed = best_fixed.min(greedy.modeled_seconds);
        }
        // Allow float-level slack: "matches" means within 0.1 %.
        if row.modeled_seconds <= best_fixed * 1.001 {
            auto_wins.push(format!("{}/q{}", row.backend, row.qubits));
        }
    }
    assert!(
        !auto_wins.is_empty(),
        "auto should match or beat the best fixed fusion budget on at least one config"
    );
    auto_wins
}

/// Full sweep → `results/fusion_planner.csv` at the workspace root
/// (benches run with the package directory as cwd).
fn write_csv(rows: &[Row]) -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let mut csv = String::from(
        "qubits,cycles,backend,strategy,requested_max_fused,chosen_max_fused,fused_gates,predicted_cost_seconds,modeled_seconds\n",
    );
    for r in rows {
        let _ = writeln!(
            csv,
            "{},{},{},{},{},{},{},{:.9e},{:.9e}",
            r.qubits,
            r.cycles,
            r.backend,
            r.strategy.label(),
            r.requested_max_fused,
            r.chosen_max_fused,
            r.fused_gates,
            r.predicted_cost_seconds,
            r.modeled_seconds
        );
    }
    std::fs::write(dir.join("fusion_planner.csv"), csv)
}

/// Machine-readable summary → `BENCH_fusion.json` at the repository root.
fn write_summary(rows: &[Row], auto_wins: &[String]) -> std::io::Result<()> {
    let configs: Vec<serde_json::Value> = rows
        .iter()
        .map(|r| {
            json!({
                "qubits": (r.qubits),
                "cycles": (r.cycles),
                "backend": (r.backend),
                "strategy": (r.strategy.label()),
                "requested_max_fused": (r.requested_max_fused),
                "chosen_max_fused": (r.chosen_max_fused),
                "fused_gates": (r.fused_gates),
                "predicted_cost_seconds": (r.predicted_cost_seconds),
                "modeled_seconds": (r.modeled_seconds),
            })
        })
        .collect();
    let doc = json!({
        "bench": "fusion_planner",
        "mode": (if bench_mode() { "bench" } else { "smoke" }),
        "cost_within_2pct_of_greedy": true,
        "auto_matches_best_fixed_on": (auto_wins.to_vec()),
        "configs": (configs),
    });
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_fusion.json");
    std::fs::write(path, serde_json::to_string_pretty(&doc).expect("summary serializes"))
}

criterion_group!(benches, bench_fusion_planner);
criterion_main!(benches);
