//! Microbenchmarks of the gate-application kernels: the host-side
//! performance of this library itself (sequential vs rayon-parallel,
//! high vs low qubits, fused gate sizes) — the functional substrate under
//! every modeled backend.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qsim_circuit::gates::GateKind;
use qsim_core::kernels::{apply_gate_par, apply_gate_seq};
use qsim_core::matrix::GateMatrix;
use qsim_core::StateVector;

const N: usize = 20; // 1M amplitudes, 8 MB in f32

fn fused_matrix(k: usize) -> GateMatrix<f32> {
    // Compose a k-qubit unitary by tensoring Hadamards.
    let h: GateMatrix<f64> = GateKind::H.matrix().expect("unitary");
    let mut m = h.clone();
    for _ in 1..k {
        m = m.tensor_high(&h);
    }
    m.cast()
}

fn bench_gate_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("apply_gate");
    group.sample_size(20);
    let bytes = (1u64 << N) * 8 * 2; // read + write each amplitude
    group.throughput(Throughput::Bytes(bytes));

    for (label, qubits) in [
        ("1q_high", vec![12usize]),
        ("1q_low", vec![0usize]),
        ("2q", vec![3usize, 11]),
        ("4q_fused", vec![2usize, 7, 12, 17]),
        ("6q_fused", vec![1usize, 4, 8, 11, 14, 18]),
    ] {
        let m = fused_matrix(qubits.len());
        group.bench_with_input(BenchmarkId::new("seq", label), &qubits, |b, qs| {
            let mut sv = StateVector::<f32>::new(N);
            b.iter(|| apply_gate_seq(&mut sv, qs, &m));
        });
        group.bench_with_input(BenchmarkId::new("par", label), &qubits, |b, qs| {
            let mut sv = StateVector::<f32>::new(N);
            b.iter(|| apply_gate_par(&mut sv, qs, &m));
        });
    }
    group.finish();
}

fn bench_precision(c: &mut Criterion) {
    let mut group = c.benchmark_group("precision");
    group.sample_size(20);
    let qs = [2usize, 7, 12, 17];

    let m32: GateMatrix<f32> = fused_matrix(4);
    group.bench_function("4q_f32", |b| {
        let mut sv = StateVector::<f32>::new(N);
        b.iter(|| apply_gate_par(&mut sv, &qs, &m32));
    });
    let m64: GateMatrix<f64> = m32.cast();
    group.bench_function("4q_f64", |b| {
        let mut sv = StateVector::<f64>::new(N);
        b.iter(|| apply_gate_par(&mut sv, &qs, &m64));
    });
    group.finish();
}

criterion_group!(benches, bench_gate_kernels, bench_precision);
criterion_main!(benches);
