//! Scalar vs SIMD lane-kernel microbenchmarks, the CPU counterpart of the
//! paper's per-kernel-class GPU measurements: for each gate shape (lane-Low,
//! strided High, diagonal), gate width, and precision, the same gate is
//! applied to a cache-resident 2^16-amplitude state through the scalar
//! kernels and through each SIMD tier the host supports
//! ([`SimdPlan::new_with_isa`] pins the tier without touching the global
//! dispatch state). Per-apply times and speedups land in
//! `results/simd_kernels.csv`.
//!
//! Full-length sampling happens under `cargo bench`; plain `cargo test`
//! smoke-runs everything once with minimal repetitions.

use std::fmt::Write as _;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use qsim_core::kernels::{apply_gate_slice_seq, KernelClass};
use qsim_core::matrix::GateMatrix;
use qsim_core::simd::{detected_isa, lane_class, Isa, SimdPlan};
use qsim_core::types::{Cplx, Float};
use qsim_core::StateVector;

/// 2^16 amplitudes: 512 KiB in `f32`, 1 MiB in `f64` — cache-resident, so
/// the comparison measures kernel arithmetic, not memory bandwidth.
const N: usize = 16;

fn bench_mode() -> bool {
    std::env::args().any(|a| a == "--bench")
}

/// `H^{⊗k}` times a global phase: unitary (amplitudes stay bounded under
/// thousands of repeated applications) yet fully complex, so both the
/// real and imaginary FMA chains do real work.
fn dense_matrix<F: Float>(k: usize) -> GateMatrix<F> {
    let dim = 1usize << k;
    let scale = 1.0 / (dim as f64).sqrt();
    let (sin, cos) = 0.3f64.sin_cos();
    let mut m = GateMatrix::<F>::zeros(dim);
    for r in 0..dim {
        for c in 0..dim {
            let sign = if (r & c).count_ones() % 2 == 0 { scale } else { -scale };
            m.set(r, c, Cplx::from_f64(sign * cos, sign * sin));
        }
    }
    m
}

/// Unitary diagonal: a phase per basis state.
fn diag_matrix<F: Float>(k: usize) -> GateMatrix<F> {
    let dim = 1usize << k;
    let mut m = GateMatrix::<F>::zeros(dim);
    for r in 0..dim {
        let (sin, cos) = (0.4 * (r + 1) as f64).sin_cos();
        m.set(r, r, Cplx::from_f64(cos, sin));
    }
    m
}

/// Gate shapes swept by the benchmark. Qubits < `log2(lanes)` of a tier
/// exercise its in-register Low path; qubits ≥ that boundary its strided
/// High path (the boundary differs per tier and precision, so the CSV
/// records the class per row).
fn cases() -> Vec<(&'static str, Vec<usize>, bool)> {
    vec![
        ("low1", vec![0], false),
        ("low2", vec![0, 1], false),
        ("low3", vec![0, 1, 2], false),
        ("mixed2", vec![1, 12], false),
        ("high1", vec![12], false),
        ("high2", vec![11, 13], false),
        ("diag_low2", vec![0, 1], true),
        ("diag_high2", vec![11, 13], true),
    ]
}

/// Best-of-`samples` time of one application, nanoseconds.
fn time_ns<F: Float>(
    amps: &mut [Cplx<F>],
    reps: usize,
    samples: usize,
    mut apply: impl FnMut(&mut [Cplx<F>]),
) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let t = Instant::now();
        for _ in 0..reps {
            apply(amps);
        }
        best = best.min(t.elapsed().as_nanos() as f64 / reps as f64);
    }
    best
}

/// Measure every case at precision `F`, appending CSV rows.
fn measure_precision<F: Float>(rows: &mut Vec<String>, reps: usize, samples: usize) {
    let tiers: Vec<Isa> =
        [Isa::Avx2, Isa::Avx512].into_iter().filter(|&t| t <= detected_isa()).collect();
    for (label, qubits, diagonal) in cases() {
        let matrix =
            if diagonal { diag_matrix::<F>(qubits.len()) } else { dense_matrix::<F>(qubits.len()) };
        let mut sv = StateVector::<F>::new(N);
        let scalar_ns = time_ns(sv.amplitudes_mut(), reps, samples, |amps| {
            apply_gate_slice_seq(amps, &qubits, &matrix);
        });
        for &tier in &tiers {
            let Some(plan) = SimdPlan::new_with_isa(tier, N, &qubits, &[], 0, &matrix) else {
                continue;
            };
            let mut sv = StateVector::<F>::new(N);
            let simd_ns = time_ns(sv.amplitudes_mut(), reps, samples, |amps| plan.apply_seq(amps));
            let class = if diagonal {
                "diag"
            } else {
                match lane_class(&qubits, tier.lane_qubits(F::PRECISION)) {
                    KernelClass::Low => "low",
                    KernelClass::High => "high",
                }
            };
            let mut row = String::new();
            let _ = write!(
                row,
                "{},{},{label},{},{class},{scalar_ns:.1},{simd_ns:.1},{:.3}",
                F::PRECISION,
                tier.name(),
                qubits.iter().map(ToString::to_string).collect::<Vec<_>>().join(";"),
                scalar_ns / simd_ns
            );
            rows.push(row);
        }
    }
}

fn bench_simd_kernels(c: &mut Criterion) {
    let (reps, samples) = if bench_mode() { (32, 9) } else { (2, 2) };

    // CSV sweep: every case × precision × available tier.
    let mut rows = Vec::new();
    measure_precision::<f32>(&mut rows, reps, samples);
    measure_precision::<f64>(&mut rows, reps, samples);
    write_csv(&rows).expect("cannot write results CSV");

    // Criterion view of the headline comparison: 2-qubit lane-Low gate,
    // scalar vs the strongest tier, both precisions.
    let mut group = c.benchmark_group("simd_low2");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((1u64 << N) * 8));
    let qubits = vec![0usize, 1];
    let m32 = dense_matrix::<f32>(2);
    group.bench_function(BenchmarkId::new("scalar", "f32"), |b| {
        let mut sv = StateVector::<f32>::new(N);
        b.iter(|| apply_gate_slice_seq(sv.amplitudes_mut(), &qubits, &m32));
    });
    if let Some(plan) = SimdPlan::new_with_isa(detected_isa(), N, &qubits, &[], 0, &m32) {
        group.bench_function(BenchmarkId::new(detected_isa().name(), "f32"), |b| {
            let mut sv = StateVector::<f32>::new(N);
            b.iter(|| plan.apply_seq(sv.amplitudes_mut()));
        });
    }
    let m64 = dense_matrix::<f64>(2);
    group.bench_function(BenchmarkId::new("scalar", "f64"), |b| {
        let mut sv = StateVector::<f64>::new(N);
        b.iter(|| apply_gate_slice_seq(sv.amplitudes_mut(), &qubits, &m64));
    });
    if let Some(plan) = SimdPlan::new_with_isa(detected_isa(), N, &qubits, &[], 0, &m64) {
        group.bench_function(BenchmarkId::new(detected_isa().name(), "f64"), |b| {
            let mut sv = StateVector::<f64>::new(N);
            b.iter(|| plan.apply_seq(sv.amplitudes_mut()));
        });
    }
    group.finish();
}

/// Rows → `results/simd_kernels.csv` at the workspace root.
fn write_csv(rows: &[String]) -> std::io::Result<()> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../results");
    std::fs::create_dir_all(&dir)?;
    let mut csv = String::from(
        "precision,isa,gate,qubits,lane_class,scalar_ns_per_apply,simd_ns_per_apply,speedup\n",
    );
    for row in rows {
        let _ = writeln!(csv, "{row}");
    }
    std::fs::write(dir.join("simd_kernels.csv"), csv)
}

criterion_group!(benches, bench_simd_kernels);
criterion_main!(benches);
