//! # qsim-distributed
//!
//! Multi-GCD distributed state-vector backend — the paper's stated future
//! work (§7: *"the multi-GPU porting for the HIP backend is an important
//! goal … offering the prospect of simulating … larger qubit counts"*),
//! built in the style of qsim/Qiskit *cache blocking* (Doi & Horii 2020,
//! cited by the paper) and cuQuantum's multi-GPU state-vector layout.
//!
//! The `2^n` amplitudes are sharded over `D = 2^d` modeled devices: the
//! top `d` physical qubit slots select the device ("global" qubits), the
//! rest index into each device's local buffer. Gates whose targets are
//! all local run concurrently on every device with no communication;
//! a gate touching a global slot first *swaps* that slot with a free
//! local slot — a pairwise half-buffer exchange between device pairs over
//! the modeled Infinity Fabric links — after which it, too, is local.
//! A logical→physical [`layout::QubitLayout`] permutation tracks the swap
//! history so amplitudes are unscrambled only once, at readback.

pub mod backend;
pub mod cost;
pub mod interconnect;
pub mod layout;
pub mod schedule;

pub use backend::{DistReport, MultiGcdBackend, EXCHANGE_KERNEL};
pub use cost::DistCostModel;
pub use interconnect::LinkSpec;
pub use layout::QubitLayout;
pub use schedule::{DistOptions, Epoch, ScheduleError, SwapPolicy, SwapSchedule};
