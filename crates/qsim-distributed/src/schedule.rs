//! Swap scheduling: which slot remappings to perform, and when.
//!
//! The eager baseline localizes global qubits one pairwise exchange at a
//! time, immediately before the gate that needs them, evicting the
//! highest unprotected local slot. That is correct but wasteful in two
//! independent ways this module fixes:
//!
//! 1. **Epoch batching.** Exchanging `k` global id bits in one
//!    all-to-all epoch moves `(1 − 2⁻ᵏ)` of each shard — the amplitudes
//!    whose new home differs in at least one of the `k` bits — instead
//!    of `k` separate half-shard exchanges (`k/2` shards total). Two
//!    batched bits save 25 % of the bytes, three save 42 %, and every
//!    batched bit also folds its per-transfer link latency into one.
//! 2. **Reuse-aware eviction.** The victim slot for an incoming global
//!    qubit is chosen by farthest-next-use (Bélády) over the remaining
//!    fused-op stream, with a soon-needed-global *prefetch* pass that
//!    fills otherwise-idle exchange pairs. A schedule that somehow prices
//!    worse than eager is discarded for the eager one, so the scheduler
//!    **never** exceeds the naive swap count (a property the test suite
//!    pins down).
//!
//! The schedule is purely a plan — `Vec<Epoch>` per fused op — so the
//! backend can replay it identically for functional runs and dry-run
//! estimates, and the distributed cost model can price a candidate fusion
//! plan without touching device state.

use std::fmt;

use qsim_fusion::{FusedCircuit, FusedOp};

use crate::interconnect::{LinkSpec, Topology};
use crate::layout::QubitLayout;

/// How the backend chooses slot remappings.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SwapPolicy {
    /// One pairwise exchange per global qubit, immediately before the
    /// gate that needs it, highest-slot victim — the naive baseline.
    Eager,
    /// Batched exchange epochs with Bélády eviction and bounded-horizon
    /// prefetch; falls back to [`SwapPolicy::Eager`] whenever the
    /// lookahead schedule would swap more (so it never loses).
    #[default]
    Lookahead,
}

impl SwapPolicy {
    /// Stable lowercase name, as accepted by `--swap-policy`.
    pub const fn label(self) -> &'static str {
        match self {
            SwapPolicy::Eager => "eager",
            SwapPolicy::Lookahead => "lookahead",
        }
    }
}

impl std::str::FromStr for SwapPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "eager" => Ok(SwapPolicy::Eager),
            "lookahead" => Ok(SwapPolicy::Lookahead),
            other => Err(format!("unknown swap policy '{other}' (expected eager | lookahead)")),
        }
    }
}

/// Default pipeline depth for comm/compute overlap: each exchange epoch
/// is split into this many per-block chunks raced against the dependent
/// gate kernel's matching chunks.
pub const DEFAULT_OVERLAP_CHUNKS: usize = 8;

/// Fused ops the prefetcher scans past the current op when filling idle
/// exchange pairs.
const LOOKAHEAD_OPS: usize = 16;

/// Execution options for the sharded backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DistOptions {
    /// Swap scheduling policy.
    pub policy: SwapPolicy,
    /// Pipeline each exchange epoch against the dependent gate kernel on
    /// a per-device comm stream (instead of serializing link time on the
    /// compute stream).
    pub overlap: bool,
    /// Pipeline depth when `overlap` is on (clamped to the kernel's
    /// block count at charge time).
    pub chunks: usize,
}

impl Default for DistOptions {
    fn default() -> Self {
        DistOptions { policy: SwapPolicy::default(), overlap: true, chunks: DEFAULT_OVERLAP_CHUNKS }
    }
}

impl DistOptions {
    /// The naive baseline the scheduler is benchmarked against: eager
    /// per-qubit swaps, link time serialized on the compute stream.
    pub fn naive() -> Self {
        DistOptions { policy: SwapPolicy::Eager, overlap: false, chunks: 1 }
    }
}

/// Why a circuit cannot be scheduled onto a given shard geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// A fused gate touches more qubits than one device holds locally.
    GateTooWide {
        /// Qubits of the offending fused gate.
        width: usize,
        /// Local qubits per device (`m`).
        local_qubits: usize,
    },
}

impl fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleError::GateTooWide { width, local_qubits } => write!(
                f,
                "a {width}-qubit fused gate cannot be made local with only {local_qubits} local \
                 qubits per device (re-fuse with a smaller max_fused_qubits)"
            ),
        }
    }
}

/// One all-to-all exchange: a batch of `(local_slot, global_slot)` swaps
/// applied atomically before a gate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Epoch {
    /// Slot swaps, in application order. Global slots are distinct (each
    /// consumes one device-id bit), as are local victim slots.
    pub pairs: Vec<(usize, usize)>,
}

impl Epoch {
    /// Bytes each device pushes over the interconnect for this epoch.
    ///
    /// Exchanging `k` id bits at once relocates every amplitude whose
    /// destination differs in at least one of them — all but the `2⁻ᵏ`
    /// fraction that stays — in a single all-to-all, versus `k·(1/2)`
    /// shards for `k` serial pairwise exchanges.
    pub fn bytes_per_device(&self, shard_len: usize, amp_bytes: usize) -> u64 {
        let shard_bytes = (shard_len * amp_bytes) as u64;
        shard_bytes - (shard_bytes >> self.pairs.len().min(63) as u32)
    }

    /// The effective link for the epoch: conservatively the slowest
    /// bandwidth and largest latency among the id bits it crosses (on a
    /// two-level topology the cross-package hop gates the all-to-all).
    pub fn link(&self, topology: &Topology, m: usize) -> LinkSpec {
        let mut bw = f64::INFINITY;
        let mut latency = 0.0f64;
        for &(_, global_slot) in &self.pairs {
            let l = topology.link_for_bit(global_slot - m);
            bw = bw.min(l.bw_gib_s);
            latency = latency.max(l.latency_us);
        }
        LinkSpec { bw_gib_s: bw, latency_us: latency }
    }

    /// Modeled wall seconds for the epoch on `topology`.
    pub fn seconds(
        &self,
        topology: &Topology,
        m: usize,
        shard_len: usize,
        amp_bytes: usize,
    ) -> f64 {
        self.link(topology, m).exchange_seconds(self.bytes_per_device(shard_len, amp_bytes))
    }
}

/// A complete swap schedule for one fused circuit on one shard geometry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwapSchedule {
    /// `epochs[i]` = exchange epochs applied immediately before op `i`
    /// (in `fused.ops` order). Eager schedules emit one single-pair epoch
    /// per swap; lookahead schedules batch all of an op's swaps (plus
    /// prefetches) into one epoch.
    pub epochs: Vec<Vec<Epoch>>,
    /// Total slot swaps across all epochs.
    pub swaps: usize,
}

impl SwapSchedule {
    /// Plan the swaps for `fused` on shards of `m` local qubits.
    pub fn plan(
        fused: &FusedCircuit,
        m: usize,
        policy: SwapPolicy,
    ) -> Result<SwapSchedule, ScheduleError> {
        match policy {
            SwapPolicy::Eager => eager(fused, m),
            SwapPolicy::Lookahead => {
                let naive = eager(fused, m)?;
                let ahead = lookahead(fused, m)?;
                // The fallback *guarantees* swaps ≤ naive; batched epochs
                // then guarantee bytes ≤ naive too, since an epoch of k
                // pairs moves (1 − 2⁻ᵏ) ≤ k/2 shards.
                Ok(if ahead.swaps <= naive.swaps { ahead } else { naive })
            }
        }
    }

    /// Exchange epochs in the schedule.
    pub fn num_epochs(&self) -> usize {
        self.epochs.iter().map(Vec::len).sum()
    }

    /// Total modeled bytes each device pushes replaying this schedule.
    pub fn bytes_per_device(&self, shard_len: usize, amp_bytes: usize) -> u64 {
        self.epochs.iter().flatten().map(|e| e.bytes_per_device(shard_len, amp_bytes)).sum()
    }
}

/// The qubit set a unitary op must have local, or `None` for ops (like
/// measurements) that execute on any layout.
fn unitary_qubits(op: &FusedOp) -> Option<&[usize]> {
    match op {
        FusedOp::Unitary(g) => Some(&g.qubits),
        FusedOp::Measurement { .. } => None,
    }
}

fn check_width(fused: &FusedCircuit, m: usize) -> Result<(), ScheduleError> {
    for g in fused.unitaries() {
        if g.qubits.len() > m {
            return Err(ScheduleError::GateTooWide { width: g.qubits.len(), local_qubits: m });
        }
    }
    Ok(())
}

/// The naive baseline: mirror of the original backend loop — one epoch
/// per global qubit, in gate-qubit order, highest-slot victim.
fn eager(fused: &FusedCircuit, m: usize) -> Result<SwapSchedule, ScheduleError> {
    check_width(fused, m)?;
    let mut layout = QubitLayout::new(fused.num_qubits, m);
    let mut epochs = Vec::with_capacity(fused.ops.len());
    let mut swaps = 0usize;
    for op in &fused.ops {
        let mut here = Vec::new();
        if let Some(qubits) = unitary_qubits(op) {
            for &q in qubits {
                if layout.is_local(q) {
                    continue;
                }
                let global_slot = layout.slot_of(q);
                let local_slot = layout.pick_victim(qubits);
                layout.swap_slots(local_slot, global_slot);
                here.push(Epoch { pairs: vec![(local_slot, global_slot)] });
                swaps += 1;
            }
        }
        epochs.push(here);
    }
    Ok(SwapSchedule { epochs, swaps })
}

/// Op indices at which each qubit is used by a unitary, ascending.
fn unitary_uses(fused: &FusedCircuit) -> Vec<Vec<usize>> {
    let mut uses = vec![Vec::new(); fused.num_qubits];
    for (i, op) in fused.ops.iter().enumerate() {
        if let Some(qubits) = unitary_qubits(op) {
            for &q in qubits {
                uses[q].push(i);
            }
        }
    }
    uses
}

/// First unitary use of `q` strictly after op `i` (`usize::MAX` = never).
fn next_use(uses: &[Vec<usize>], q: usize, i: usize) -> usize {
    let us = &uses[q];
    let at = us.partition_point(|&u| u <= i);
    us.get(at).copied().unwrap_or(usize::MAX)
}

/// Bélády victim: the local slot whose logical qubit is needed farthest
/// in the future (ties broken toward higher slots, which keeps the
/// `ApplyGateL_Kernel`-triggering low slots stable), excluding `protect`.
/// `None` when every local slot is protected (a gate as wide as the
/// shard, once all its qubits are resident).
fn pick_victim_belady(
    layout: &QubitLayout,
    uses: &[Vec<usize>],
    i: usize,
    protect: &[usize],
) -> Option<usize> {
    let mut best: Option<(usize, usize)> = None; // (next_use, slot)
    for s in 0..layout.local_qubits() {
        let q = layout.logical_at(s);
        if protect.contains(&q) {
            continue;
        }
        let nu = next_use(uses, q, i);
        let candidate = (nu, s);
        if best.is_none_or(|b| candidate >= b) {
            best = Some(candidate);
        }
    }
    best.map(|b| b.1)
}

/// The lookahead scheduler: batch every swap an op needs (plus
/// soon-needed prefetches) into one epoch, evicting by farthest next use.
fn lookahead(fused: &FusedCircuit, m: usize) -> Result<SwapSchedule, ScheduleError> {
    check_width(fused, m)?;
    let n = fused.num_qubits;
    let d = n - m; // global id bits; an epoch holds at most d pairs
    let uses = unitary_uses(fused);
    let mut layout = QubitLayout::new(n, m);
    let mut epochs = Vec::with_capacity(fused.ops.len());
    let mut swaps = 0usize;
    for (i, op) in fused.ops.iter().enumerate() {
        let mut here = Vec::new();
        if let Some(qubits) = unitary_qubits(op) {
            let mut pairs = Vec::new();
            // Demand fetches: everything this gate touches.
            for &q in qubits {
                if layout.is_local(q) {
                    continue;
                }
                let global_slot = layout.slot_of(q);
                // A gate with a global qubit protects at most m−1 local
                // slots, so a demand victim always exists.
                let local_slot = pick_victim_belady(&layout, &uses, i, qubits)
                    .expect("a global gate qubit leaves an unprotected local slot");
                layout.swap_slots(local_slot, global_slot);
                pairs.push((local_slot, global_slot));
            }
            // Prefetch: fill remaining id bits of an already-paid epoch
            // with globals needed soon, but only over victims needed
            // strictly later than the prefetched qubit — never trading a
            // sooner need for a later one.
            if !pairs.is_empty() {
                let horizon = fused.ops.len().min(i + 1 + LOOKAHEAD_OPS);
                for j in i + 1..horizon {
                    if pairs.len() >= d {
                        break;
                    }
                    let Some(future) = unitary_qubits(&fused.ops[j]) else { continue };
                    for &g in future {
                        if pairs.len() >= d || layout.is_local(g) {
                            continue;
                        }
                        let g_next = next_use(&uses, g, i);
                        let Some(victim) = pick_victim_belady(&layout, &uses, i, qubits) else {
                            break;
                        };
                        if next_use(&uses, layout.logical_at(victim), i) > g_next {
                            let global_slot = layout.slot_of(g);
                            layout.swap_slots(victim, global_slot);
                            pairs.push((victim, global_slot));
                        }
                    }
                }
                swaps += pairs.len();
                here.push(Epoch { pairs });
            }
        }
        epochs.push(here);
    }
    Ok(SwapSchedule { epochs, swaps })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::{generate_rqc, library, RqcOptions};
    use qsim_fusion::fuse;

    /// Replay a schedule and assert every unitary's qubits are local when
    /// its op executes; returns the total swap count replayed.
    fn replay_and_check(fused: &FusedCircuit, m: usize, schedule: &SwapSchedule) -> usize {
        assert_eq!(schedule.epochs.len(), fused.ops.len());
        let mut layout = QubitLayout::new(fused.num_qubits, m);
        let mut swaps = 0;
        for (i, op) in fused.ops.iter().enumerate() {
            for epoch in &schedule.epochs[i] {
                let mut globals: Vec<usize> = Vec::new();
                let mut locals: Vec<usize> = Vec::new();
                for &(local_slot, global_slot) in &epoch.pairs {
                    assert!(local_slot < m && global_slot >= m, "pair orientation");
                    globals.push(global_slot);
                    locals.push(local_slot);
                    layout.swap_slots(local_slot, global_slot);
                    swaps += 1;
                }
                globals.sort_unstable();
                globals.dedup();
                locals.sort_unstable();
                locals.dedup();
                assert_eq!(globals.len(), epoch.pairs.len(), "global slots distinct");
                assert_eq!(locals.len(), epoch.pairs.len(), "victim slots distinct");
            }
            if let Some(qubits) = unitary_qubits(op) {
                for &q in qubits {
                    assert!(layout.is_local(q), "op {i}: qubit {q} not local");
                }
            }
        }
        swaps
    }

    fn rqc(n: usize, depth: usize, seed: u64, f: usize) -> FusedCircuit {
        fuse(&generate_rqc(&RqcOptions::for_qubits(n, depth, seed)), f)
    }

    #[test]
    fn eager_schedule_is_valid_and_single_pair() {
        let fused = rqc(10, 12, 7, 3);
        for d in [1usize, 2, 3] {
            let m = 10 - d;
            let s = SwapSchedule::plan(&fused, m, SwapPolicy::Eager).expect("plan");
            assert_eq!(replay_and_check(&fused, m, &s), s.swaps);
            assert!(s.epochs.iter().flatten().all(|e| e.pairs.len() == 1));
        }
    }

    #[test]
    fn lookahead_schedule_is_valid() {
        for seed in 0..4 {
            let fused = rqc(10, 12, seed, 3);
            for d in [1usize, 2, 3] {
                let m = 10 - d;
                let s = SwapSchedule::plan(&fused, m, SwapPolicy::Lookahead).expect("plan");
                assert_eq!(replay_and_check(&fused, m, &s), s.swaps);
            }
        }
    }

    #[test]
    fn lookahead_never_exceeds_eager_swaps_or_bytes() {
        for seed in 0..6 {
            let fused = rqc(11, 16, seed, 3);
            for d in [1usize, 2, 3, 4] {
                let m = 11 - d;
                let eager = SwapSchedule::plan(&fused, m, SwapPolicy::Eager).expect("eager");
                let ahead = SwapSchedule::plan(&fused, m, SwapPolicy::Lookahead).expect("ahead");
                assert!(ahead.swaps <= eager.swaps, "seed {seed} d={d}");
                let shard_len = 1usize << m;
                assert!(
                    ahead.bytes_per_device(shard_len, 8) <= eager.bytes_per_device(shard_len, 8),
                    "seed {seed} d={d}"
                );
            }
        }
    }

    #[test]
    fn lookahead_batches_multi_qubit_demand_into_one_epoch() {
        // One 2-qubit gate on the two global qubits of a 6q/4-device
        // layout: eager pays two half-shard exchanges, lookahead one
        // 2-bit epoch.
        let mut c = qsim_circuit::Circuit::new(6);
        use qsim_circuit::gates::GateKind;
        c.push(GateKind::Cz, &[4, 5]);
        let fused = fuse(&c, 2);
        let m = 4;
        let eager = SwapSchedule::plan(&fused, m, SwapPolicy::Eager).expect("eager");
        let ahead = SwapSchedule::plan(&fused, m, SwapPolicy::Lookahead).expect("ahead");
        assert_eq!(eager.num_epochs(), 2);
        assert_eq!(ahead.num_epochs(), 1);
        assert_eq!(ahead.swaps, 2);
        let shard_len = 1usize << m;
        // 2 bits batched: (1 − 1/4) of the shard vs 2 × (1/2).
        assert_eq!(ahead.bytes_per_device(shard_len, 8), (shard_len * 8) as u64 * 3 / 4);
        assert_eq!(eager.bytes_per_device(shard_len, 8), (shard_len * 8) as u64);
    }

    #[test]
    fn measurements_need_no_epochs() {
        let mut c = qsim_circuit::Circuit::new(6);
        use qsim_circuit::gates::GateKind;
        c.push(GateKind::H, &[5]);
        c.push(GateKind::Measurement, &[4, 5]);
        let fused = fuse(&c, 2);
        let s = SwapSchedule::plan(&fused, 4, SwapPolicy::Lookahead).expect("plan");
        // The H on the global qubit 5 swaps; the measurement does not.
        let meas_idx = fused
            .ops
            .iter()
            .position(|op| matches!(op, FusedOp::Measurement { .. }))
            .expect("measurement present");
        assert!(s.epochs[meas_idx].is_empty());
        assert!(s.swaps >= 1);
    }

    #[test]
    fn too_wide_gate_is_rejected() {
        let fused = fuse(&generate_rqc(&RqcOptions::for_qubits(6, 4, 1)), 4);
        assert!(matches!(
            SwapSchedule::plan(&fused, 2, SwapPolicy::Lookahead),
            Err(ScheduleError::GateTooWide { .. })
        ));
    }

    #[test]
    fn epoch_cost_model_matches_pairwise_at_k1() {
        let topo = Topology::Uniform(LinkSpec::infinity_fabric_in_package());
        let e = Epoch { pairs: vec![(0, 4)] };
        let shard_len = 1usize << 4;
        assert_eq!(e.bytes_per_device(shard_len, 8), (shard_len / 2 * 8) as u64);
        let expected =
            LinkSpec::infinity_fabric_in_package().exchange_seconds((shard_len / 2 * 8) as u64);
        assert!((e.seconds(&topo, 4, shard_len, 8) - expected).abs() < 1e-15);
    }

    #[test]
    fn two_level_epoch_takes_the_slow_link() {
        let topo = Topology::frontier_node();
        let m = 4;
        let in_package = Epoch { pairs: vec![(0, m)] };
        let crossing = Epoch { pairs: vec![(0, m), (1, m + 1)] };
        let slow = crossing.link(&topo, m);
        assert_eq!(slow.bw_gib_s, LinkSpec::infinity_fabric_node().bw_gib_s);
        assert_eq!(
            in_package.link(&topo, m).bw_gib_s,
            LinkSpec::infinity_fabric_in_package().bw_gib_s
        );
    }

    #[test]
    fn ghz_long_range_reuse_profits_from_lookahead() {
        // GHZ touches qubit q and q+1 consecutively: once a global qubit
        // is fetched it is reused by the next gate, so lookahead's Bélády
        // eviction should not exceed (and typically matches) eager here,
        // while deep RQCs show real byte savings.
        let fused = fuse(&library::ghz(10), 2);
        let eager = SwapSchedule::plan(&fused, 7, SwapPolicy::Eager).expect("eager");
        let ahead = SwapSchedule::plan(&fused, 7, SwapPolicy::Lookahead).expect("ahead");
        assert!(ahead.swaps <= eager.swaps);
        assert_eq!(replay_and_check(&fused, 7, &ahead), ahead.swaps);
    }
}
