//! Logical→physical qubit placement for the sharded state vector.
//!
//! Physical slot `s < m` (with `m` local qubits per device) is bit `s` of
//! a device-local amplitude index; slot `s ≥ m` is bit `s - m` of the
//! device id. The layout tracks where each *logical* circuit qubit
//! currently lives, so global-qubit gates can be made local with swaps
//! and the final state can be unscrambled in one pass.

/// A permutation between logical qubits and physical slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QubitLayout {
    /// `slot_of[q]` = physical slot currently holding logical qubit `q`.
    slot_of: Vec<usize>,
    /// `logical_at[s]` = logical qubit currently in physical slot `s`.
    logical_at: Vec<usize>,
    /// Local qubits per device (`m`); slots `>= m` are global.
    local_qubits: usize,
}

impl QubitLayout {
    /// Identity layout for `n` qubits with `m = n - d` local slots.
    pub fn new(n: usize, local_qubits: usize) -> Self {
        assert!(local_qubits <= n, "more devices than amplitudes");
        QubitLayout { slot_of: (0..n).collect(), logical_at: (0..n).collect(), local_qubits }
    }

    /// Total qubit count.
    pub fn num_qubits(&self) -> usize {
        self.slot_of.len()
    }

    /// Local qubits per device.
    pub fn local_qubits(&self) -> usize {
        self.local_qubits
    }

    /// Physical slot of logical qubit `q`.
    pub fn slot_of(&self, q: usize) -> usize {
        self.slot_of[q]
    }

    /// Logical qubit living in physical slot `s`.
    pub fn logical_at(&self, s: usize) -> usize {
        self.logical_at[s]
    }

    /// Whether logical qubit `q` currently lives in a local slot.
    pub fn is_local(&self, q: usize) -> bool {
        self.slot_of[q] < self.local_qubits
    }

    /// Swap the contents of two physical slots (records the permutation
    /// only; the backend moves the data).
    pub fn swap_slots(&mut self, a: usize, b: usize) {
        let qa = self.logical_at[a];
        let qb = self.logical_at[b];
        self.logical_at.swap(a, b);
        self.slot_of[qa] = b;
        self.slot_of[qb] = a;
    }

    /// Choose a local slot to evict for an incoming global qubit: the
    /// highest local slot whose logical qubit is not in `protect`.
    /// Preferring high slots keeps the device's low slots (the
    /// `ApplyGateL_Kernel`-triggering ones) stable.
    pub fn pick_victim(&self, protect: &[usize]) -> usize {
        (0..self.local_qubits)
            .rev()
            .find(|&s| !protect.contains(&self.logical_at[s]))
            .expect("at least one local slot must be free (gate width < local qubits)")
    }

    /// Map a logical amplitude index to its physical index under the
    /// current layout: bit `q` of `logical` moves to bit `slot_of[q]`.
    pub fn physical_index(&self, logical: usize) -> usize {
        let mut p = 0usize;
        for (q, &s) in self.slot_of.iter().enumerate() {
            p |= ((logical >> q) & 1) << s;
        }
        p
    }

    /// Whether the layout is the identity permutation.
    pub fn is_identity(&self) -> bool {
        self.slot_of.iter().enumerate().all(|(q, &s)| q == s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_layout() {
        let l = QubitLayout::new(6, 4);
        assert!(l.is_identity());
        assert!(l.is_local(3));
        assert!(!l.is_local(4));
        assert_eq!(l.physical_index(0b101101), 0b101101);
    }

    #[test]
    fn swap_updates_both_maps() {
        let mut l = QubitLayout::new(6, 4);
        l.swap_slots(2, 5); // logical 5 becomes local, logical 2 global
        assert_eq!(l.slot_of(5), 2);
        assert_eq!(l.slot_of(2), 5);
        assert_eq!(l.logical_at(2), 5);
        assert_eq!(l.logical_at(5), 2);
        assert!(l.is_local(5));
        assert!(!l.is_local(2));
        assert!(!l.is_identity());
        // Swap back restores identity.
        l.swap_slots(2, 5);
        assert!(l.is_identity());
    }

    #[test]
    fn physical_index_follows_swaps() {
        let mut l = QubitLayout::new(4, 2);
        l.swap_slots(0, 3);
        // logical bit 0 now at slot 3, logical bit 3 at slot 0.
        assert_eq!(l.physical_index(0b0001), 0b1000);
        assert_eq!(l.physical_index(0b1000), 0b0001);
        assert_eq!(l.physical_index(0b0110), 0b0110);
    }

    #[test]
    fn physical_index_is_a_bijection() {
        let mut l = QubitLayout::new(5, 3);
        l.swap_slots(1, 4);
        l.swap_slots(0, 3);
        let mut seen = [false; 32];
        for i in 0..32 {
            let p = l.physical_index(i);
            assert!(!seen[p]);
            seen[p] = true;
        }
    }

    #[test]
    fn victim_prefers_high_slots_and_respects_protection() {
        let l = QubitLayout::new(8, 5);
        assert_eq!(l.pick_victim(&[]), 4);
        assert_eq!(l.pick_victim(&[4]), 3);
        assert_eq!(l.pick_victim(&[4, 3, 2]), 1);
    }

    #[test]
    #[should_panic(expected = "more devices than amplitudes")]
    fn too_many_devices_rejected() {
        let _ = QubitLayout::new(3, 4);
    }
}
