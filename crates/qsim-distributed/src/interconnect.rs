//! Device-to-device interconnect model.
//!
//! The MI250X's two GCDs talk over in-package Infinity Fabric; GCDs on
//! different packages of a Frontier/LUMI-style node use external Infinity
//! Fabric links. A global-qubit swap is a *pairwise* exchange — every
//! device sends and receives half its shard concurrently with all other
//! pairs — so the modeled cost per device is one half-shard transfer at
//! the per-pair link bandwidth, plus latency.

/// A point-to-point link between device pairs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Per-direction bandwidth of one pairwise link, GiB/s.
    pub bw_gib_s: f64,
    /// Per-transfer latency, microseconds.
    pub latency_us: f64,
}

impl LinkSpec {
    /// In-package Infinity Fabric between the two GCDs of one MI250X:
    /// 4 links × 50 GB/s ≈ 200 GB/s per direction (AMD CDNA2 whitepaper);
    /// we model the effective achievable rate.
    pub fn infinity_fabric_in_package() -> Self {
        LinkSpec { bw_gib_s: 150.0, latency_us: 10.0 }
    }

    /// External Infinity Fabric between packages on a Frontier-class
    /// node: a single 50 GB/s link per GCD pair.
    pub fn infinity_fabric_node() -> Self {
        LinkSpec { bw_gib_s: 40.0, latency_us: 15.0 }
    }

    /// NVLink 3 between A100s (for CUDA-flavor multi-GPU modeling).
    pub fn nvlink3() -> Self {
        LinkSpec { bw_gib_s: 100.0, latency_us: 8.0 }
    }

    /// Time in **seconds** for one pairwise exchange in which each device
    /// sends and receives `bytes_each_way` (full duplex).
    pub fn exchange_seconds(&self, bytes_each_way: u64) -> f64 {
        self.latency_us * 1e-6 + bytes_each_way as f64 / (self.bw_gib_s * 1024.0 * 1024.0 * 1024.0)
    }
}

/// How device pairs are wired — which link a given global-qubit swap
/// crosses.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Topology {
    /// Every pair uses the same link.
    Uniform(LinkSpec),
    /// Frontier/LUMI-style hierarchy: devices whose ids differ only in
    /// bit 0 are the two GCDs of one MI250X package (fast in-package
    /// Infinity Fabric); swaps on higher global bits cross packages on
    /// the slower node-level links.
    TwoLevel { in_package: LinkSpec, cross_package: LinkSpec },
}

impl Topology {
    /// The Frontier-node default: in-package + node-level Infinity Fabric.
    pub fn frontier_node() -> Self {
        Topology::TwoLevel {
            in_package: LinkSpec::infinity_fabric_in_package(),
            cross_package: LinkSpec::infinity_fabric_node(),
        }
    }

    /// Link crossed when swapping global bit `t` (device pairs differ in
    /// exactly that id bit).
    pub fn link_for_bit(&self, t: usize) -> LinkSpec {
        match *self {
            Topology::Uniform(link) => link,
            Topology::TwoLevel { in_package, cross_package } => {
                if t == 0 {
                    in_package
                } else {
                    cross_package
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_ordering() {
        let inp = LinkSpec::infinity_fabric_in_package();
        let node = LinkSpec::infinity_fabric_node();
        assert!(inp.bw_gib_s > node.bw_gib_s, "in-package link is faster");
    }

    #[test]
    fn exchange_time_scales_linearly() {
        let link = LinkSpec { bw_gib_s: 100.0, latency_us: 0.0 };
        let one = link.exchange_seconds(1 << 30);
        let two = link.exchange_seconds(2 << 30);
        assert!((one - 0.01).abs() < 1e-6, "1 GiB over 100 GiB/s = 10 ms, got {one}");
        assert!((two / one - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_floors_small_transfers() {
        let link = LinkSpec { bw_gib_s: 100.0, latency_us: 12.0 };
        assert!((link.exchange_seconds(0) - 12e-6).abs() < 1e-12);
    }
}
