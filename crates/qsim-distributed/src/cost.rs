//! The distributed fusion cost model.
//!
//! Wraps the flavor's single-device [`FusionCostModel`] (priced over the
//! *shard* width `m = n − d`) and adds the modeled interconnect cost of
//! the slot swaps the [`crate::schedule`] planner would emit for the
//! plan. Two consequences the fusion planner can now see:
//!
//! * A wide fused gate that drags global qubits local pays real exchange
//!   seconds, so `--fusion auto` stops merging once the swap traffic a
//!   merge induces outweighs the pass it saves — the distributed config
//!   space of the qHiPSTER/cuQuantum papers.
//! * [`FusionCostModel::plan_traffic`] reports shard traffic plus the
//!   exchanged bytes across **all** devices, so the serve layer's
//!   bandwidth ledger charges a sharded job for the fabric it occupies.
//!
//! The per-gate [`FusionCostModel::gate_cost`] is necessarily
//! context-free (the planner probes candidate merges one gate at a time),
//! so it prices a gate's globals as individual pairwise exchanges — the
//! eager upper bound. [`FusionCostModel::plan_cost`] re-prices the whole
//! plan through the real scheduler, so batched epochs and reuse-aware
//! eviction show up exactly where plans are compared.

use qsim_backends::{Flavor, SimBackend};
use qsim_core::types::Precision;
use qsim_fusion::{FusedCircuit, FusionCostModel, TrafficEstimate};

use crate::interconnect::Topology;
use crate::layout::QubitLayout;
use crate::schedule::{SwapPolicy, SwapSchedule};

/// Prices fused plans for [`crate::MultiGcdBackend`]: single-device cost
/// at shard width plus modeled swap-exchange time and traffic.
pub struct DistCostModel {
    inner: Box<dyn FusionCostModel>,
    devices: usize,
    /// Global id bits (`log2 devices`).
    d: usize,
    topology: Topology,
    precision: Precision,
    policy: SwapPolicy,
}

impl DistCostModel {
    /// Model for `devices` devices of `flavor` joined by `topology`,
    /// swapping under `policy`.
    pub fn new(
        flavor: Flavor,
        devices: usize,
        topology: Topology,
        precision: Precision,
        policy: SwapPolicy,
    ) -> Self {
        assert!(devices.is_power_of_two(), "device count must be a power of two, got {devices}");
        DistCostModel {
            inner: SimBackend::new(flavor).cost_model(precision),
            devices,
            d: devices.trailing_zeros() as usize,
            topology,
            precision,
            policy,
        }
    }

    /// Local qubits per device for an `n`-qubit circuit, or `None` when
    /// the circuit is too narrow to shard over this many devices.
    fn local_qubits(&self, num_qubits: usize) -> Option<usize> {
        (num_qubits > self.d).then(|| num_qubits - self.d)
    }

    /// Context-free local-slot mapping for one gate: local qubits keep
    /// their identity slot, globals land on the highest otherwise-free
    /// local slots (mirroring the schedulers' high-slot victim bias).
    fn local_slots(&self, m: usize, qubits: &[usize]) -> Vec<usize> {
        let mut slots: Vec<usize> = Vec::with_capacity(qubits.len());
        let mut next_free = m;
        for &q in qubits {
            if q < m {
                slots.push(q);
            } else {
                next_free = (0..next_free)
                    .rev()
                    .find(|s| !qubits.contains(s) && !slots.contains(s))
                    .expect("gate width ≤ m leaves a free slot");
                slots.push(next_free);
            }
        }
        slots.sort_unstable();
        slots
    }

    /// The scheduled swap plan for `plan`, when it fits the geometry.
    fn schedule(&self, plan: &FusedCircuit) -> Option<(SwapSchedule, usize)> {
        let m = self.local_qubits(plan.num_qubits)?;
        SwapSchedule::plan(plan, m, self.policy).ok().map(|s| (s, m))
    }
}

impl FusionCostModel for DistCostModel {
    fn name(&self) -> &'static str {
        "distributed"
    }

    fn gate_cost(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let Some(m) = self.local_qubits(num_qubits) else {
            return f64::INFINITY;
        };
        if qubits.len() > m {
            // Un-localizable gate: merging this wide can never execute.
            return f64::INFINITY;
        }
        let slots = self.local_slots(m, qubits);
        let mut cost = self.inner.gate_cost(m, &slots);
        // Eager upper bound: one pairwise half-shard exchange per global
        // qubit, over the worst link (the planner has no layout context,
        // and overestimating swaps biases toward fewer global touches —
        // the conservative direction).
        let half_shard = (1u64 << m) / 2 * self.precision.amplitude_bytes() as u64;
        let worst = (0..self.d).map(|t| self.topology.link_for_bit(t)).reduce(|a, b| {
            if a.exchange_seconds(half_shard) >= b.exchange_seconds(half_shard) {
                a
            } else {
                b
            }
        });
        if let Some(link) = worst {
            let globals = qubits.iter().filter(|&&q| q >= m).count();
            cost += globals as f64 * link.exchange_seconds(half_shard);
        }
        cost
    }

    fn plan_cost(&self, plan: &FusedCircuit) -> f64 {
        let Some((schedule, m)) = self.schedule(plan) else {
            return f64::INFINITY;
        };
        let shard_len = 1usize << m;
        let amp_bytes = self.precision.amplitude_bytes();
        // Exchange seconds from the real schedule...
        let mut cost: f64 = schedule
            .epochs
            .iter()
            .flatten()
            .map(|e| e.seconds(&self.topology, m, shard_len, amp_bytes))
            .sum();
        // ...plus each pass priced at the slots the replayed layout
        // actually executes it on.
        let mut layout = QubitLayout::new(plan.num_qubits, m);
        for (i, op) in plan.ops.iter().enumerate() {
            for epoch in &schedule.epochs[i] {
                for &(local_slot, global_slot) in &epoch.pairs {
                    layout.swap_slots(local_slot, global_slot);
                }
            }
            if let qsim_fusion::FusedOp::Unitary(g) = op {
                let mut slots: Vec<usize> = g.qubits.iter().map(|&q| layout.slot_of(q)).collect();
                slots.sort_unstable();
                cost += self.inner.gate_cost(m, &slots);
            }
        }
        cost
    }

    fn gate_traffic(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let Some(m) = self.local_qubits(num_qubits) else {
            return f64::INFINITY;
        };
        if qubits.len() > m {
            return f64::INFINITY;
        }
        let slots = self.local_slots(m, qubits);
        let half_shard = ((1u64 << m) / 2 * self.precision.amplitude_bytes() as u64) as f64;
        let globals = qubits.iter().filter(|&&q| q >= m).count();
        // Every device runs the pass and pushes its exchange share.
        self.devices as f64 * (self.inner.gate_traffic(m, &slots) + globals as f64 * half_shard)
    }

    fn plan_traffic(&self, plan: &FusedCircuit) -> TrafficEstimate {
        let Some((schedule, m)) = self.schedule(plan) else {
            return TrafficEstimate { bytes: f64::INFINITY, seconds: f64::INFINITY };
        };
        let shard_len = 1usize << m;
        let amp_bytes = self.precision.amplitude_bytes();
        let mut bytes = schedule.bytes_per_device(shard_len, amp_bytes) as f64;
        let mut layout = QubitLayout::new(plan.num_qubits, m);
        for (i, op) in plan.ops.iter().enumerate() {
            for epoch in &schedule.epochs[i] {
                for &(local_slot, global_slot) in &epoch.pairs {
                    layout.swap_slots(local_slot, global_slot);
                }
            }
            if let qsim_fusion::FusedOp::Unitary(g) = op {
                let mut slots: Vec<usize> = g.qubits.iter().map(|&q| layout.slot_of(q)).collect();
                slots.sort_unstable();
                bytes += self.inner.gate_traffic(m, &slots);
            }
        }
        TrafficEstimate { bytes: self.devices as f64 * bytes, seconds: self.plan_cost(plan) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::{generate_rqc, library, RqcOptions};
    use qsim_fusion::{fuse, FusionStrategy};

    fn model(devices: usize) -> DistCostModel {
        DistCostModel::new(
            Flavor::Hip,
            devices,
            Topology::Uniform(crate::interconnect::LinkSpec::infinity_fabric_in_package()),
            Precision::Single,
            SwapPolicy::Lookahead,
        )
    }

    #[test]
    fn global_gates_cost_more_than_local_ones() {
        // 10 qubits on 4 devices: m = 8. A gate on {0,1} is local; the
        // same-width gate on {8,9} needs two exchanges.
        let m = model(4);
        let local = m.gate_cost(10, &[0, 1]);
        let global = m.gate_cost(10, &[8, 9]);
        assert!(local.is_finite() && global.is_finite());
        assert!(global > local * 2.0, "exchange must dominate: {global} vs {local}");
    }

    #[test]
    fn unshardable_shapes_price_infinite() {
        let m = model(4);
        // Too narrow to shard over 4 devices.
        assert!(m.gate_cost(2, &[0, 1]).is_infinite());
        // Gate wider than the shard.
        assert!(m.gate_cost(5, &[0, 1, 2, 3]).is_infinite());
        let wide = fuse(&generate_rqc(&RqcOptions::for_qubits(6, 4, 1)), 4);
        assert!(DistCostModel::new(
            Flavor::Hip,
            16,
            Topology::frontier_node(),
            Precision::Single,
            SwapPolicy::Lookahead,
        )
        .plan_cost(&wide)
        .is_infinite());
    }

    #[test]
    fn plan_cost_beats_gate_cost_sum_when_scheduling_helps() {
        // The context-free gate_cost prices eager pairwise exchanges; the
        // real scheduler batches and reuses, so whole-plan pricing is
        // never above the per-gate upper bound.
        let fused = fuse(&generate_rqc(&RqcOptions::for_qubits(11, 12, 5)), 3);
        let m = model(8);
        let gate_sum: f64 =
            fused.unitaries().map(|g| m.gate_cost(fused.num_qubits, &g.qubits)).sum();
        let plan = m.plan_cost(&fused);
        assert!(plan.is_finite());
        assert!(plan <= gate_sum * (1.0 + 1e-9), "plan {plan} vs gate sum {gate_sum}");
    }

    #[test]
    fn traffic_counts_every_device() {
        let fused = fuse(&library::qft(9), 3);
        let t1 = model(2).plan_traffic(&fused);
        let t2 = model(4).plan_traffic(&fused);
        assert!(t1.bytes.is_finite() && t2.bytes.is_finite());
        assert!(t1.bytes > 0.0);
        assert!(t1.seconds > 0.0 && t2.seconds > 0.0);
        assert!(t1.bytes_per_second() > 0.0);
    }

    #[test]
    fn auto_fusion_sees_the_distributed_space() {
        // Planning through the distributed model must stay executable:
        // auto never picks a fused width the shard cannot hold.
        let circuit = generate_rqc(&RqcOptions::for_qubits(8, 8, 3));
        let m = DistCostModel::new(
            Flavor::Hip,
            16, // m = 4: widths above 4 are infinite
            Topology::frontier_node(),
            Precision::Single,
            SwapPolicy::Lookahead,
        );
        let plan = qsim_fusion::plan(&circuit, FusionStrategy::Auto, 6, &m);
        assert!(plan.fused.unitaries().all(|g| g.qubits.len() <= 4));
        assert!(plan.predicted_cost_seconds.is_finite());
    }
}
