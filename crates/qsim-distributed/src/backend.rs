//! The multi-GCD execution engine.
//!
//! Bulk-synchronous over `D = 2^d` modeled devices: every fused gate runs
//! on all shards concurrently; gates touching a *global* qubit slot are
//! preceded by exchange epochs planned up-front by the
//! [`crate::schedule`] swap scheduler (batched all-to-alls with
//! reuse-aware eviction, never worse than the eager one-swap-at-a-time
//! baseline). The functional amplitudes are exact — the shard exchange
//! really moves the data — while each device's virtual timeline
//! accumulates the modeled kernel and link costs.
//!
//! With [`DistOptions::overlap`] on, each exchange is split into
//! per-block chunks charged to a dedicated comm stream and pipelined
//! against the dependent gate kernel's matching chunks on the compute
//! stream (double-buffering on the device timeline, the same trick the
//! single-device flavors play with `hipMemcpyAsync` matrix uploads), so
//! link time hides behind compute instead of serializing.
//!
//! `run` and `estimate` drive the **identical** charging helper over the
//! identical schedule, so a dry-run prices exactly what a functional run
//! pays — the invariant the timing tests pin down.

use std::collections::BTreeMap;
use std::time::Instant;

use qsim_backends::plan::{gate_kernel_desc, init_kernel_desc};
use qsim_backends::{
    Backend, BackendError, Flavor, KernelStat, PlanOptions, RunOptions, RunReport,
};
use qsim_circuit::gates::permute_matrix_bits;
use qsim_core::kernels::apply_gate_slice_par;
use qsim_core::matrix::GateMatrix;
use qsim_core::statespace::measure_slice;
use qsim_core::types::{Cplx, Float, Precision};
use qsim_core::StateVector;
use qsim_fusion::{FusedCircuit, FusedOp, FusionCostModel, FusionPlan, FusionStrategy};

use gpu_model::memory::DeviceBuffer;
use gpu_model::runtime::{Gpu, KernelDesc, StreamId};
use gpu_model::trace::SpanKind;
use gpu_model::GpuError;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::cost::DistCostModel;
use crate::interconnect::{LinkSpec, Topology};
use crate::layout::QubitLayout;
use crate::schedule::{DistOptions, SwapSchedule};

/// Kernel-stat name of the modeled shard exchange.
pub const EXCHANGE_KERNEL: &str = "GlobalSwapExchange";

/// Report of one distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistReport {
    /// Backend flavor label.
    pub backend: String,
    /// Number of devices (`2^d`).
    pub devices: usize,
    /// Local qubits per device.
    pub local_qubits: usize,
    /// Circuit width.
    pub num_qubits: usize,
    /// Working precision.
    pub precision: Precision,
    /// Fused unitary passes executed (per device).
    pub fused_gates: usize,
    /// Global-qubit slot swaps performed.
    pub swaps: usize,
    /// Exchange epochs the swaps were batched into (≤ `swaps`; each epoch
    /// is one all-to-all on the device timeline).
    pub swap_epochs: usize,
    /// Bytes each device pushed over the interconnect.
    pub exchanged_bytes_per_device: u64,
    /// Modeled link-occupancy seconds of the exchanges (before any
    /// comm/compute overlap; the makespan reflects the overlap).
    pub exchange_seconds: f64,
    /// Modeled end-to-end time, seconds (max over device timelines).
    pub simulated_seconds: f64,
    /// Total state memory across devices, bytes.
    pub state_bytes_total: u64,
    /// Outcomes of in-circuit measurements, in order.
    pub measurements: Vec<(Vec<usize>, usize)>,
    /// Bitstrings sampled from the final state when
    /// [`RunOptions::sample_count`] > 0 (empty for estimates).
    pub samples: Vec<u64>,
    /// Per-kernel launch statistics on one device's timeline (the shards
    /// run in lockstep, so one timeline is representative).
    pub kernels: Vec<KernelStat>,
}

/// A state vector sharded across several modeled devices of one flavor.
pub struct MultiGcdBackend {
    flavor: Flavor,
    topology: Topology,
    devices: Vec<Gpu>,
    /// One comm stream per device, for overlapped exchange charging.
    comm_streams: Vec<StreamId>,
    options: DistOptions,
}

impl MultiGcdBackend {
    /// `num_devices` (a power of two) devices of the flavor's default
    /// spec, joined by in-package Infinity Fabric (or NVLink for the
    /// Nvidia flavors).
    pub fn new(flavor: Flavor, num_devices: usize) -> Self {
        let link = match flavor {
            Flavor::Cuda | Flavor::CuStateVec => LinkSpec::nvlink3(),
            _ => LinkSpec::infinity_fabric_in_package(),
        };
        Self::with_link(flavor, num_devices, link)
    }

    /// Devices joined by a uniform link model.
    pub fn with_link(flavor: Flavor, num_devices: usize, link: LinkSpec) -> Self {
        Self::with_topology(flavor, num_devices, Topology::Uniform(link))
    }

    /// Devices joined by an explicit topology (e.g.
    /// [`Topology::frontier_node`] for the in-package/cross-package
    /// hierarchy of the paper's testbed).
    pub fn with_topology(flavor: Flavor, num_devices: usize, topology: Topology) -> Self {
        assert!(
            num_devices.is_power_of_two() && num_devices >= 1,
            "device count must be a power of two, got {num_devices}"
        );
        let devices: Vec<Gpu> = (0..num_devices).map(|_| Gpu::new(flavor.default_spec())).collect();
        let comm_streams = devices.iter().map(Gpu::create_stream).collect();
        MultiGcdBackend { flavor, topology, devices, comm_streams, options: DistOptions::default() }
    }

    /// Builder-style override of the scheduling/overlap options.
    pub fn with_options(mut self, options: DistOptions) -> Self {
        self.options = options;
        self
    }

    /// Replace the scheduling/overlap options in place.
    pub fn set_options(&mut self, options: DistOptions) {
        self.options = options;
    }

    /// The active scheduling/overlap options.
    pub fn options(&self) -> DistOptions {
        self.options
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    /// This backend's flavor.
    pub fn flavor(&self) -> Flavor {
        self.flavor
    }

    /// The interconnect topology.
    pub fn topology(&self) -> Topology {
        self.topology
    }

    /// Bytes of state each device holds for an `n`-qubit circuit.
    pub fn shard_bytes(&self, num_qubits: usize, precision: Precision) -> u64 {
        let d = self.devices.len().trailing_zeros() as usize;
        let m = num_qubits.saturating_sub(d);
        ((1u64) << m) * precision.amplitude_bytes() as u64
    }

    fn validate(&self, fused: &FusedCircuit) -> Result<(usize, usize), BackendError> {
        let n = fused.num_qubits;
        let d = self.devices.len().trailing_zeros() as usize;
        if n == 0 || n > qsim_core::statevec::MAX_QUBITS {
            return Err(BackendError::InvalidCircuit(format!("unsupported qubit count {n}")));
        }
        if d >= n {
            return Err(BackendError::InvalidCircuit(format!(
                "{} devices need more than {n} qubits",
                self.devices.len()
            )));
        }
        let m = n - d;
        for g in fused.unitaries() {
            if g.qubits.iter().any(|&q| q >= n) {
                return Err(BackendError::InvalidCircuit("gate qubit out of range".into()));
            }
        }
        Ok((d, m))
    }

    /// Plan the swap schedule for `fused` under the active policy.
    fn plan_swaps(&self, fused: &FusedCircuit, m: usize) -> Result<SwapSchedule, BackendError> {
        SwapSchedule::plan(fused, m, self.options.policy)
            .map_err(|e| BackendError::InvalidCircuit(e.to_string()))
    }

    /// Move physical slot `global_slot` (≥ m) into local slot
    /// `local_slot` in the *data*, for all device pairs.
    fn exchange_data<F: Float>(
        buffers: &mut [DeviceBuffer<Cplx<F>>],
        m: usize,
        local_slot: usize,
        global_slot: usize,
    ) {
        let t = global_slot - m;
        let pair_bit = 1usize << t;
        let a_bit = 1usize << local_slot;
        let shard_len = buffers[0].len();
        for r0 in 0..buffers.len() {
            if r0 & pair_bit != 0 {
                continue;
            }
            let r1 = r0 | pair_bit;
            let (lo, hi) = buffers.split_at_mut(r1);
            let b0 = lo[r0].as_mut_slice();
            let b1 = hi[0].as_mut_slice();
            for i in 0..shard_len {
                if i & a_bit == 0 {
                    std::mem::swap(&mut b0[i | a_bit], &mut b1[i]);
                }
            }
        }
    }

    /// The gate's matrix re-expressed over its (sorted) physical slots.
    fn physical_matrix<F: Float>(
        layout: &QubitLayout,
        qubits: &[usize],
        matrix: &GateMatrix<f64>,
    ) -> (Vec<usize>, GateMatrix<F>) {
        let slots: Vec<usize> = qubits.iter().map(|&q| layout.slot_of(q)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        let m64 = if sorted == slots {
            matrix.clone()
        } else {
            let perm: Vec<usize> = slots
                .iter()
                .map(|s| sorted.iter().position(|x| x == s).expect("slot present"))
                .collect();
            permute_matrix_bits(matrix, &perm)
        };
        (sorted, m64.cast())
    }

    fn makespan(&self) -> f64 {
        self.devices.iter().map(|g| g.synchronize()).fold(0.0, f64::max)
    }

    /// The `i`-th of `chunks` slices of a gate kernel, blocks and work
    /// divided proportionally (remainder blocks land on early chunks).
    fn chunk_desc(desc: &KernelDesc, i: usize, chunks: usize) -> KernelDesc {
        let total = desc.blocks.max(1);
        let base = total / chunks as u64;
        let rem = total % chunks as u64;
        let blocks = base + u64::from((i as u64) < rem);
        let share = blocks as f64 / total as f64;
        KernelDesc {
            name: desc.name.clone(),
            blocks,
            threads_per_block: desc.threads_per_block,
            shared_mem_bytes: desc.shared_mem_bytes,
            work: gpu_model::runtime::KernelWork {
                bytes: desc.work.bytes * share,
                flops: desc.work.flops * share,
                passes: desc.work.passes * share,
            },
            double_precision: desc.double_precision,
        }
    }

    /// Charge one fused-gate pass — optionally preceded by `exchange_us`
    /// of link traffic — to every device's timeline. This is the single
    /// charging path shared verbatim by [`MultiGcdBackend::run`] and
    /// [`MultiGcdBackend::estimate`], so dry-run and functional timing
    /// agree by construction.
    ///
    /// Serialized mode queues the exchange ahead of the kernel on the
    /// compute stream. Overlapped mode splits both into
    /// [`DistOptions::chunks`] pieces: exchange chunk `i` runs on the
    /// comm stream, the matching kernel chunk waits on its event — so
    /// chunk `i+1`'s link time hides behind chunk `i`'s compute.
    fn charge_gate_timeline(
        &self,
        desc: &KernelDesc,
        exchange_us: f64,
        stats: &mut BTreeMap<String, (u64, f64)>,
    ) -> Result<(), BackendError> {
        if exchange_us <= 0.0 {
            for gpu in &self.devices {
                let (s, e) = gpu.charge_launch(desc, StreamId::DEFAULT)?;
                if std::ptr::eq(gpu, &self.devices[0]) {
                    bump(stats, &desc.name, e - s);
                }
            }
            return Ok(());
        }
        if !self.options.overlap {
            for gpu in &self.devices {
                let (xs, xe) = gpu.charge_custom(
                    EXCHANGE_KERNEL,
                    SpanKind::MemcpyD2D,
                    StreamId::DEFAULT,
                    exchange_us,
                )?;
                let (s, e) = gpu.charge_launch(desc, StreamId::DEFAULT)?;
                if std::ptr::eq(gpu, &self.devices[0]) {
                    bump(stats, EXCHANGE_KERNEL, xe - xs);
                    bump(stats, &desc.name, e - s);
                }
            }
            return Ok(());
        }
        let chunks = self.options.chunks.clamp(1, desc.blocks.max(1) as usize);
        for (r, gpu) in self.devices.iter().enumerate() {
            let comm = self.comm_streams[r];
            // The exchange reads amplitudes the previous kernel wrote:
            // the comm stream first syncs with compute.
            let prior = gpu.record_event(StreamId::DEFAULT)?;
            gpu.stream_wait_event(comm, prior)?;
            let mut xt = 0.0;
            let mut kt = 0.0;
            for i in 0..chunks {
                let (xs, xe) = gpu.charge_custom(
                    EXCHANGE_KERNEL,
                    SpanKind::MemcpyD2D,
                    comm,
                    exchange_us / chunks as f64,
                )?;
                let ready = gpu.record_event(comm)?;
                gpu.stream_wait_event(StreamId::DEFAULT, ready)?;
                let cd = Self::chunk_desc(desc, i, chunks);
                let (s, e) = gpu.charge_launch(&cd, StreamId::DEFAULT)?;
                xt += xe - xs;
                kt += e - s;
            }
            if r == 0 {
                bump(stats, EXCHANGE_KERNEL, xt);
                bump(stats, &desc.name, kt);
            }
        }
        Ok(())
    }

    /// Per-op exchange accounting shared by run and estimate: replays the
    /// op's epochs against `layout` (optionally moving shard data),
    /// returning the modeled link microseconds to charge.
    #[allow(clippy::too_many_arguments)]
    fn apply_epochs<F: Float>(
        &self,
        schedule: &SwapSchedule,
        op_index: usize,
        layout: &mut QubitLayout,
        m: usize,
        amp_bytes: usize,
        mut buffers: Option<&mut [DeviceBuffer<Cplx<F>>]>,
        tally: &mut ExchangeTally,
    ) -> f64 {
        let shard_len = 1usize << m;
        let mut exchange_us = 0.0;
        for epoch in &schedule.epochs[op_index] {
            for &(local_slot, global_slot) in &epoch.pairs {
                if let Some(bufs) = buffers.as_deref_mut() {
                    Self::exchange_data(bufs, m, local_slot, global_slot);
                }
                layout.swap_slots(local_slot, global_slot);
            }
            tally.swaps += epoch.pairs.len();
            tally.epochs += 1;
            tally.bytes += epoch.bytes_per_device(shard_len, amp_bytes);
            exchange_us += epoch.seconds(&self.topology, m, shard_len, amp_bytes) * 1e6;
        }
        tally.us += exchange_us;
        exchange_us
    }

    /// Functional + modeled execution from `|0…0⟩`.
    pub fn run<F: Float>(
        &self,
        fused: &FusedCircuit,
        opts: &RunOptions,
    ) -> Result<(StateVector<F>, DistReport), BackendError> {
        let (_, m) = self.validate(fused)?;
        let schedule = self.plan_swaps(fused, m)?;
        let shard_len = 1usize << m;
        let amp_bytes = F::PRECISION.amplitude_bytes();
        let dp = F::PRECISION == Precision::Double;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut layout = QubitLayout::new(fused.num_qubits, m);
        let mut measurements = Vec::new();
        let mut stats: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut tally = ExchangeTally::default();

        let t0 = self.makespan();
        let mut buffers: Vec<DeviceBuffer<Cplx<F>>> = self
            .devices
            .iter()
            .map(|g| g.malloc::<Cplx<F>>(shard_len))
            .collect::<Result<_, GpuError>>()?;
        buffers[0].as_mut_slice()[0] = Cplx::one();
        let init = init_kernel_desc(self.flavor, shard_len, amp_bytes, dp);
        for gpu in &self.devices {
            let (s, e) = gpu.charge_launch(&init, StreamId::DEFAULT)?;
            if std::ptr::eq(gpu, &self.devices[0]) {
                bump(&mut stats, &init.name, e - s);
            }
        }

        for (i, op) in fused.ops.iter().enumerate() {
            match op {
                FusedOp::Unitary(g) => {
                    let exchange_us = self.apply_epochs(
                        &schedule,
                        i,
                        &mut layout,
                        m,
                        amp_bytes,
                        Some(&mut buffers),
                        &mut tally,
                    );
                    let (slots, matrix) = Self::physical_matrix::<F>(&layout, &g.qubits, &g.matrix);
                    let desc = gate_kernel_desc(self.flavor, m, &slots, amp_bytes, dp, None);
                    self.charge_gate_timeline(&desc, exchange_us, &mut stats)?;
                    for buf in &mut buffers {
                        apply_gate_slice_par(buf.as_mut_slice(), &slots, &matrix);
                    }
                }
                FusedOp::Measurement { qubits, .. } => {
                    // Gather to host in logical order, measure, scatter
                    // back; charged as one full D2H + H2D round trip.
                    let mut logical = self.gather_logical(&buffers, &layout, m);
                    self.charge_measurement(shard_len, amp_bytes, &mut stats)?;
                    let outcome = measure_slice(&mut logical, qubits, &mut rng);
                    measurements.push((qubits.clone(), outcome));
                    self.scatter_logical(&mut buffers, &layout, m, &logical);
                }
            }
        }

        let state = StateVector::from_amplitudes(self.gather_logical(&buffers, &layout, m));
        let mut samples = Vec::new();
        if opts.sample_count > 0 {
            self.charge_sample(shard_len, amp_bytes, dp, &mut stats)?;
            samples = qsim_core::statespace::sample(&state, opts.sample_count, &mut rng);
        }
        let simulated = (self.makespan() - t0) * 1e-6;

        let report =
            self.dist_report::<F>(fused, m, &tally, simulated, measurements, samples, stats);
        Ok((state, report))
    }

    /// Dry run: modeled timing without allocating or computing. Traverses
    /// the identical schedule and charging path as [`MultiGcdBackend::run`].
    pub fn estimate(
        &self,
        fused: &FusedCircuit,
        precision: Precision,
    ) -> Result<DistReport, BackendError> {
        let (_, m) = self.validate(fused)?;
        let schedule = self.plan_swaps(fused, m)?;
        let shard_len = 1usize << m;
        let amp_bytes = precision.amplitude_bytes();
        let dp = precision == Precision::Double;
        let shard_bytes = (shard_len * amp_bytes) as u64;
        let spec_mem = self.devices[0].spec().memory_bytes;
        if shard_bytes > spec_mem {
            return Err(BackendError::Gpu(GpuError::OutOfMemory {
                requested_bytes: shard_bytes,
                free_bytes: spec_mem,
            }));
        }
        let mut layout = QubitLayout::new(fused.num_qubits, m);
        let mut stats: BTreeMap<String, (u64, f64)> = BTreeMap::new();
        let mut tally = ExchangeTally::default();

        let t0 = self.makespan();
        let init = init_kernel_desc(self.flavor, shard_len, amp_bytes, dp);
        for gpu in &self.devices {
            let (s, e) = gpu.charge_launch(&init, StreamId::DEFAULT)?;
            if std::ptr::eq(gpu, &self.devices[0]) {
                bump(&mut stats, &init.name, e - s);
            }
        }
        for (i, op) in fused.ops.iter().enumerate() {
            match op {
                FusedOp::Unitary(g) => {
                    let exchange_us = self.apply_epochs::<f32>(
                        &schedule,
                        i,
                        &mut layout,
                        m,
                        amp_bytes,
                        None,
                        &mut tally,
                    );
                    let mut slots: Vec<usize> =
                        g.qubits.iter().map(|&q| layout.slot_of(q)).collect();
                    slots.sort_unstable();
                    let desc = gate_kernel_desc(self.flavor, m, &slots, amp_bytes, dp, None);
                    self.charge_gate_timeline(&desc, exchange_us, &mut stats)?;
                }
                FusedOp::Measurement { .. } => {
                    self.charge_measurement(shard_len, amp_bytes, &mut stats)?;
                }
            }
        }
        let simulated = (self.makespan() - t0) * 1e-6;
        let mut report =
            self.dist_report::<f32>(fused, m, &tally, simulated, Vec::new(), Vec::new(), stats);
        report.precision = precision;
        report.state_bytes_total = shard_bytes * self.devices.len() as u64;
        Ok(report)
    }

    fn charge_measurement(
        &self,
        shard_len: usize,
        amp_bytes: usize,
        stats: &mut BTreeMap<String, (u64, f64)>,
    ) -> Result<(), BackendError> {
        for gpu in &self.devices {
            gpu.charge_memcpy(
                SpanKind::MemcpyD2H,
                (shard_len * amp_bytes) as u64,
                StreamId::DEFAULT,
            )?;
            gpu.charge_memcpy(
                SpanKind::MemcpyH2D,
                (shard_len * amp_bytes) as u64,
                StreamId::DEFAULT,
            )?;
        }
        bump(stats, "Measure(D2H+H2D)", 0.0);
        Ok(())
    }

    /// Model the final-state sampling pass: every device makes one
    /// cumulative sweep over its shard (qsim's `SampleKernel`).
    fn charge_sample(
        &self,
        shard_len: usize,
        amp_bytes: usize,
        dp: bool,
        stats: &mut BTreeMap<String, (u64, f64)>,
    ) -> Result<(), BackendError> {
        let tpb = self.flavor.threads_per_block(qsim_core::kernels::KernelClass::High);
        let desc = KernelDesc {
            name: "SampleKernel".into(),
            blocks: ((shard_len as u64) / 2 / u64::from(tpb)).max(1),
            threads_per_block: tpb,
            shared_mem_bytes: 0,
            work: gpu_model::runtime::KernelWork {
                bytes: (shard_len * amp_bytes) as f64,
                flops: shard_len as f64 * 4.0,
                passes: 1.0,
            },
            double_precision: dp,
        };
        for gpu in &self.devices {
            let (s, e) = gpu.charge_launch(&desc, StreamId::DEFAULT)?;
            if std::ptr::eq(gpu, &self.devices[0]) {
                bump(stats, &desc.name, e - s);
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn dist_report<F: Float>(
        &self,
        fused: &FusedCircuit,
        m: usize,
        tally: &ExchangeTally,
        simulated: f64,
        measurements: Vec<(Vec<usize>, usize)>,
        samples: Vec<u64>,
        stats: BTreeMap<String, (u64, f64)>,
    ) -> DistReport {
        let kernels = stats
            .into_iter()
            .map(|(name, (count, time_us))| KernelStat { name, count, time_us })
            .collect();
        DistReport {
            backend: self.flavor.label().into(),
            devices: self.devices.len(),
            local_qubits: m,
            num_qubits: fused.num_qubits,
            precision: F::PRECISION,
            fused_gates: fused.num_unitaries(),
            swaps: tally.swaps,
            swap_epochs: tally.epochs,
            exchanged_bytes_per_device: tally.bytes,
            exchange_seconds: tally.us * 1e-6,
            simulated_seconds: simulated,
            state_bytes_total: ((1u64 << m) * F::PRECISION.amplitude_bytes() as u64)
                * self.devices.len() as u64,
            measurements,
            samples,
            kernels,
        }
    }

    /// Collect shards into a logically-ordered amplitude vector.
    fn gather_logical<F: Float>(
        &self,
        buffers: &[DeviceBuffer<Cplx<F>>],
        layout: &QubitLayout,
        m: usize,
    ) -> Vec<Cplx<F>> {
        let n = layout.num_qubits();
        let mask = (1usize << m) - 1;
        (0..1usize << n)
            .map(|l| {
                let p = layout.physical_index(l);
                buffers[p >> m].as_slice()[p & mask]
            })
            .collect()
    }

    /// Write a logically-ordered amplitude vector back into the shards.
    fn scatter_logical<F: Float>(
        &self,
        buffers: &mut [DeviceBuffer<Cplx<F>>],
        layout: &QubitLayout,
        m: usize,
        logical: &[Cplx<F>],
    ) {
        let mask = (1usize << m) - 1;
        for (l, &amp) in logical.iter().enumerate() {
            let p = layout.physical_index(l);
            buffers[p >> m].as_mut_slice()[p & mask] = amp;
        }
    }

    // ---- SimBackend-shaped planning surface -----------------------------

    /// The distributed fusion cost model: the flavor's single-device model
    /// over the *shard* width, plus modeled exchange traffic for gates the
    /// swap scheduler must localize — so `--fusion auto` prices the
    /// distributed config space (wide fused gates that force exchanges
    /// lose to narrower ones that stay local).
    pub fn cost_model(&self, precision: Precision) -> Box<dyn FusionCostModel> {
        Box::new(DistCostModel::new(
            self.flavor,
            self.devices.len(),
            self.topology,
            precision,
            self.options.policy,
        ))
    }

    /// Plan a source circuit for this sharded backend, priced by
    /// [`MultiGcdBackend::cost_model`].
    pub fn plan_circuit(
        &self,
        circuit: &qsim_circuit::Circuit,
        opts: &PlanOptions,
        precision: Precision,
    ) -> FusionPlan {
        let model = self.cost_model(precision);
        qsim_fusion::plan(circuit, opts.strategy, opts.max_fused_qubits, model.as_ref())
    }

    /// Run a planned circuit, reporting through the single-device
    /// [`RunReport`] shape (so the CLI and serve layers treat sharded and
    /// single-device runs uniformly).
    pub fn run_plan<F: Float>(
        &self,
        plan: &FusionPlan,
        opts: &RunOptions,
    ) -> Result<(StateVector<F>, RunReport), BackendError> {
        let wall = Instant::now();
        let (state, dist) = self.run::<F>(&plan.fused, opts)?;
        let mut report = self.run_report(&dist, &plan.fused, wall.elapsed().as_secs_f64());
        report.fusion_strategy = plan.strategy.label().into();
        report.predicted_cost_seconds = plan.predicted_cost_seconds;
        Ok((state, report))
    }

    /// Dry-run a planned circuit (see [`MultiGcdBackend::estimate`]).
    pub fn estimate_plan(
        &self,
        plan: &FusionPlan,
        precision: Precision,
    ) -> Result<RunReport, BackendError> {
        let wall = Instant::now();
        let dist = self.estimate(&plan.fused, precision)?;
        let mut report = self.run_report(&dist, &plan.fused, wall.elapsed().as_secs_f64());
        report.fusion_strategy = plan.strategy.label().into();
        report.predicted_cost_seconds = plan.predicted_cost_seconds;
        Ok(report)
    }

    /// A [`DistReport`] reshaped into the workspace-wide [`RunReport`].
    pub fn run_report(
        &self,
        dist: &DistReport,
        fused: &FusedCircuit,
        wall_seconds: f64,
    ) -> RunReport {
        let isa = qsim_core::simd::active_isa();
        let lane_qubits = isa.lane_qubits(dist.precision);
        let mut grid = [[0u64; 2]; 2];
        for g in fused.unitaries() {
            use qsim_core::kernels::{classify_gate, classify_gate_at, KernelClass};
            let gpu = usize::from(classify_gate(&g.qubits) == KernelClass::Low);
            let cpu = usize::from(classify_gate_at(&g.qubits, lane_qubits) == KernelClass::Low);
            grid[gpu][cpu] += 1;
        }
        RunReport {
            backend: dist.backend.clone(),
            device: format!("{}x {}", dist.devices, self.devices[0].spec().name),
            precision: dist.precision,
            num_qubits: dist.num_qubits,
            max_fused_qubits: fused.max_fused_qubits,
            fused_gates: dist.fused_gates,
            fusion_strategy: FusionStrategy::Greedy.label().into(),
            predicted_cost_seconds: 0.0,
            fusion_stats: fused.stats(),
            simulated_seconds: dist.simulated_seconds,
            fusion_seconds: 0.0,
            wall_seconds,
            setup_seconds: 0.0,
            kernels: dist.kernels.clone(),
            measurements: dist.measurements.clone(),
            samples: dist.samples.clone(),
            state_bytes: dist.state_bytes_total,
            peak_state_bytes: dist.state_bytes_total,
            buffer_reused: false,
            state_passes: dist.fused_gates as u64,
            analysis_warnings: Vec::new(),
            isa: isa.name().into(),
            gate_class_counts: qsim_backends::report::GateClassCount::from_grid(grid),
            batch_id: None,
            batch_size: 1,
        }
    }
}

/// Exchange accounting accumulated over one run/estimate.
#[derive(Debug, Default)]
struct ExchangeTally {
    swaps: usize,
    epochs: usize,
    bytes: u64,
    us: f64,
}

fn bump(stats: &mut BTreeMap<String, (u64, f64)>, name: &str, dur_us: f64) {
    let entry = stats.entry(name.to_string()).or_insert((0, 0.0));
    entry.0 += 1;
    entry.1 += dur_us;
}

/// The sharded backend is shareable across service worker threads: all
/// mutable state lives behind the device model's own synchronization.
const _: () = {
    const fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<MultiGcdBackend>();
};

impl Backend for MultiGcdBackend {
    fn label(&self) -> &'static str {
        self.flavor.label()
    }

    fn device_name(&self) -> String {
        format!("{}x {}", self.devices.len(), self.devices[0].spec().name)
    }

    fn run_f32(
        &self,
        fused: &FusedCircuit,
        opts: &RunOptions,
    ) -> Result<(StateVector<f32>, RunReport), BackendError> {
        let wall = Instant::now();
        let (state, dist) = self.run::<f32>(fused, opts)?;
        let report = self.run_report(&dist, fused, wall.elapsed().as_secs_f64());
        Ok((state, report))
    }

    fn run_f64(
        &self,
        fused: &FusedCircuit,
        opts: &RunOptions,
    ) -> Result<(StateVector<f64>, RunReport), BackendError> {
        let wall = Instant::now();
        let (state, dist) = self.run::<f64>(fused, opts)?;
        let report = self.run_report(&dist, fused, wall.elapsed().as_secs_f64());
        Ok((state, report))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::SwapPolicy;
    use qsim_backends::SimBackend;
    use qsim_circuit::{generate_rqc, library, RqcOptions};
    use qsim_fusion::fuse;

    fn single_device_state(fused: &FusedCircuit) -> StateVector<f64> {
        SimBackend::new(Flavor::Hip)
            .run::<f64>(fused, &RunOptions::default())
            .expect("single run")
            .0
    }

    #[test]
    fn one_device_matches_single_backend() {
        let fused = fuse(&library::ghz(8), 3);
        let dist = MultiGcdBackend::new(Flavor::Hip, 1);
        let (state, report) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
        assert_eq!(report.swaps, 0);
        assert!(single_device_state(&fused).max_abs_diff(&state) < 1e-14);
    }

    #[test]
    fn sharded_rqc_matches_single_device() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(10, 8, 21));
        for f in [2usize, 3, 4] {
            let fused = fuse(&circuit, f);
            let reference = single_device_state(&fused);
            for devices in [2usize, 4, 8] {
                let dist = MultiGcdBackend::new(Flavor::Hip, devices);
                let (state, report) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
                let diff = reference.max_abs_diff(&state);
                assert!(diff < 1e-12, "D={devices} f={f}: diff {diff}");
                // Global gates exist in an RQC this wide, so swaps happen.
                if devices > 1 {
                    assert!(report.swaps > 0, "D={devices} f={f}");
                    assert!(report.exchanged_bytes_per_device > 0);
                    assert!(report.swap_epochs <= report.swaps);
                }
            }
        }
    }

    #[test]
    fn qft_sharded_matches() {
        let fused = fuse(&library::qft(9), 3);
        let reference = single_device_state(&fused);
        let dist = MultiGcdBackend::new(Flavor::Cuda, 4);
        let (state, _) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
        assert!(reference.max_abs_diff(&state) < 1e-12);
    }

    #[test]
    fn estimate_matches_run_timing() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(10, 6, 3));
        let fused = fuse(&circuit, 3);
        for devices in [1usize, 2, 4] {
            let a = MultiGcdBackend::new(Flavor::Hip, devices);
            let run_report = a.run::<f32>(&fused, &RunOptions::default()).expect("run").1;
            let b = MultiGcdBackend::new(Flavor::Hip, devices);
            let est = b.estimate(&fused, Precision::Single).expect("estimate");
            assert_eq!(run_report.swaps, est.swaps, "D={devices}");
            assert_eq!(run_report.swap_epochs, est.swap_epochs, "D={devices}");
            assert!(
                (run_report.simulated_seconds - est.simulated_seconds).abs() < 1e-9,
                "D={devices}"
            );
        }
    }

    #[test]
    fn estimate_matches_run_timing_under_every_option_mix() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(9, 6, 5));
        let fused = fuse(&circuit, 3);
        for policy in [SwapPolicy::Eager, SwapPolicy::Lookahead] {
            for overlap in [false, true] {
                let options = DistOptions { policy, overlap, chunks: 4 };
                let a = MultiGcdBackend::new(Flavor::Hip, 4).with_options(options);
                let run_report = a.run::<f32>(&fused, &RunOptions::default()).expect("run").1;
                let b = MultiGcdBackend::new(Flavor::Hip, 4).with_options(options);
                let est = b.estimate(&fused, Precision::Single).expect("estimate");
                assert_eq!(run_report.swaps, est.swaps, "{policy:?} overlap={overlap}");
                assert!(
                    (run_report.simulated_seconds - est.simulated_seconds).abs() < 1e-9,
                    "{policy:?} overlap={overlap}"
                );
            }
        }
    }

    #[test]
    fn measurement_in_sharded_state() {
        let mut c = qsim_circuit::Circuit::new(6);
        use qsim_circuit::gates::GateKind;
        c.push(GateKind::H, &[0]);
        for q in 1..6 {
            c.push(GateKind::Cnot, &[q - 1, q]);
        }
        c.push(GateKind::Measurement, &[0, 1, 2, 3, 4, 5]);
        let fused = fuse(&c, 2);
        for seed in 0..10 {
            let dist = MultiGcdBackend::new(Flavor::Hip, 4);
            let (state, report) =
                dist.run::<f64>(&fused, &RunOptions { seed, sample_count: 0 }).expect("run");
            let (_, outcome) = &report.measurements[0];
            assert!(*outcome == 0 || *outcome == 0b111111, "GHZ gave {outcome:06b}");
            assert!((state.amplitude(*outcome).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_level_topology_is_slower_than_uniform_fast_links() {
        use crate::interconnect::Topology;
        let circuit = generate_rqc(&RqcOptions::paper_q30());
        let fused = fuse(&circuit, 4);
        let uniform = MultiGcdBackend::new(Flavor::Hip, 4)
            .estimate(&fused, Precision::Single)
            .expect("estimate");
        let hierarchical =
            MultiGcdBackend::with_topology(Flavor::Hip, 4, Topology::frontier_node())
                .estimate(&fused, Precision::Single)
                .expect("estimate");
        // Same swaps and functional behaviour, slower cross-package links.
        assert_eq!(uniform.swaps, hierarchical.swaps);
        assert!(hierarchical.simulated_seconds > uniform.simulated_seconds);
        // ...and functional equivalence is unaffected by topology.
        let small = fuse(&generate_rqc(&RqcOptions::for_qubits(8, 4, 2)), 2);
        let (a, _) = MultiGcdBackend::new(Flavor::Hip, 4)
            .run::<f64>(&small, &RunOptions::default())
            .expect("run");
        let (b, _) = MultiGcdBackend::with_topology(Flavor::Hip, 4, Topology::frontier_node())
            .run::<f64>(&small, &RunOptions::default())
            .expect("run");
        assert!(a.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn capacity_grows_with_devices() {
        // 34 qubits single precision = 128 GiB: too big for one GCD once
        // you go to 35, but 2 devices halve the shard.
        let c = qsim_circuit::Circuit::new(35);
        let fused = fuse(&c, 2);
        assert!(MultiGcdBackend::new(Flavor::Hip, 1).estimate(&fused, Precision::Single).is_err());
        assert!(MultiGcdBackend::new(Flavor::Hip, 2).estimate(&fused, Precision::Single).is_ok());
    }

    #[test]
    fn too_wide_gate_for_shard_is_rejected() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(6, 4, 1));
        let fused = fuse(&circuit, 4);
        // 16 devices leave only 2 local qubits; a 4-qubit fused gate
        // cannot be localized.
        let dist = MultiGcdBackend::new(Flavor::Hip, 16);
        assert!(matches!(
            dist.estimate(&fused, Precision::Single),
            Err(BackendError::InvalidCircuit(_))
        ));
    }

    #[test]
    fn more_devices_fewer_seconds_at_scale() {
        // Strong scaling on the paper's 30-qubit RQC: 2 GCDs beat 1
        // despite the interconnect traffic.
        let circuit = generate_rqc(&RqcOptions::paper_q30());
        let fused = fuse(&circuit, 4);
        let t1 = MultiGcdBackend::new(Flavor::Hip, 1)
            .estimate(&fused, Precision::Single)
            .expect("estimate")
            .simulated_seconds;
        let t2 = MultiGcdBackend::new(Flavor::Hip, 2)
            .estimate(&fused, Precision::Single)
            .expect("estimate")
            .simulated_seconds;
        assert!(t2 < t1, "2 GCDs {t2} should beat 1 GCD {t1}");
        // ...but far from perfectly (swap traffic): parallel efficiency
        // below 100 %.
        assert!(t2 > t1 / 2.0, "scaling cannot be super-linear: {t2} vs {t1}");
    }

    #[test]
    fn lookahead_moves_fewer_bytes_than_eager() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(12, 16, 11));
        let fused = fuse(&circuit, 3);
        let eager = MultiGcdBackend::new(Flavor::Hip, 8)
            .with_options(DistOptions::naive())
            .estimate(&fused, Precision::Single)
            .expect("eager");
        let ahead = MultiGcdBackend::new(Flavor::Hip, 8)
            .with_options(DistOptions { policy: SwapPolicy::Lookahead, ..DistOptions::naive() })
            .estimate(&fused, Precision::Single)
            .expect("lookahead");
        assert!(
            ahead.exchanged_bytes_per_device <= eager.exchanged_bytes_per_device,
            "lookahead {} vs eager {}",
            ahead.exchanged_bytes_per_device,
            eager.exchanged_bytes_per_device
        );
        assert!(ahead.swaps <= eager.swaps);
        // Functional equivalence under both policies.
        let small = fuse(&generate_rqc(&RqcOptions::for_qubits(9, 6, 4)), 2);
        let reference = single_device_state(&small);
        for policy in [SwapPolicy::Eager, SwapPolicy::Lookahead] {
            let dist = MultiGcdBackend::new(Flavor::Hip, 4)
                .with_options(DistOptions { policy, ..DistOptions::default() });
            let (state, _) = dist.run::<f64>(&small, &RunOptions::default()).expect("run");
            assert!(reference.max_abs_diff(&state) < 1e-12, "{policy:?}");
        }
    }

    #[test]
    fn overlap_hides_link_time() {
        let circuit = generate_rqc(&RqcOptions::paper_q30());
        let fused = fuse(&circuit, 4);
        let serialized = MultiGcdBackend::new(Flavor::Hip, 4)
            .with_options(DistOptions { overlap: false, ..DistOptions::default() })
            .estimate(&fused, Precision::Single)
            .expect("serialized");
        let overlapped = MultiGcdBackend::new(Flavor::Hip, 4)
            .with_options(DistOptions { overlap: true, ..DistOptions::default() })
            .estimate(&fused, Precision::Single)
            .expect("overlapped");
        // Same schedule, same bytes — only the timeline interleaving
        // differs, and pipelining must win.
        assert_eq!(serialized.swaps, overlapped.swaps);
        assert_eq!(serialized.exchanged_bytes_per_device, overlapped.exchanged_bytes_per_device);
        assert!(
            overlapped.simulated_seconds < serialized.simulated_seconds,
            "overlap {} vs serialized {}",
            overlapped.simulated_seconds,
            serialized.simulated_seconds
        );
    }

    #[test]
    fn run_plan_reports_through_run_report() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(9, 6, 2));
        let dist = MultiGcdBackend::new(Flavor::Hip, 4);
        let plan = dist.plan_circuit(&circuit, &PlanOptions::default(), Precision::Single);
        let (state, report) =
            dist.run_plan::<f32>(&plan, &RunOptions { seed: 1, sample_count: 64 }).expect("run");
        assert_eq!(state.num_qubits(), 9);
        assert_eq!(report.samples.len(), 64);
        assert!(report.device.starts_with("4x "));
        assert!(report.simulated_seconds > 0.0);
        assert!(report.launches_matching(EXCHANGE_KERNEL) > 0);
        let est = dist.estimate_plan(&plan, Precision::Single).expect("estimate");
        assert_eq!(est.fused_gates, report.fused_gates);
        assert_eq!(est.fusion_strategy, report.fusion_strategy);
    }

    #[test]
    fn sampling_matches_single_device_distribution() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(10, 8, 6));
        let fused = fuse(&circuit, 4);
        let dist = MultiGcdBackend::new(Flavor::Hip, 4);
        let opts = RunOptions { seed: 5, sample_count: 20_000 };
        let (state, report) = dist.run::<f32>(&fused, &opts).expect("run");
        assert_eq!(report.samples.len(), 20_000);
        let xeb = qsim_core::statespace::linear_xeb(&state, &report.samples);
        assert!((0.8..=1.2).contains(&xeb), "sharded sample XEB {xeb}");
    }
}
