//! The multi-GCD execution engine.
//!
//! Bulk-synchronous over `D = 2^d` modeled devices: every fused gate runs
//! on all shards concurrently; gates touching a *global* qubit slot are
//! preceded by a slot swap (pairwise half-shard exchange over the
//! interconnect). The functional amplitudes are exact — the shard
//! exchange really moves the data — while each device's virtual timeline
//! accumulates the modeled kernel and link costs.

use qsim_backends::plan::{gate_kernel_desc, init_kernel_desc};
use qsim_backends::{BackendError, Flavor, RunOptions};
use qsim_circuit::gates::permute_matrix_bits;
use qsim_core::kernels::apply_gate_slice_par;
use qsim_core::matrix::GateMatrix;
use qsim_core::statespace::measure_slice;
use qsim_core::types::{Cplx, Float, Precision};
use qsim_core::StateVector;
use qsim_fusion::{FusedCircuit, FusedOp};

use gpu_model::memory::DeviceBuffer;
use gpu_model::runtime::{Gpu, StreamId};
use gpu_model::trace::SpanKind;
use gpu_model::GpuError;

use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::interconnect::{LinkSpec, Topology};
use crate::layout::QubitLayout;

/// Report of one distributed run.
#[derive(Debug, Clone, PartialEq)]
pub struct DistReport {
    /// Backend flavor label.
    pub backend: String,
    /// Number of devices (`2^d`).
    pub devices: usize,
    /// Local qubits per device.
    pub local_qubits: usize,
    /// Circuit width.
    pub num_qubits: usize,
    /// Working precision.
    pub precision: Precision,
    /// Fused unitary passes executed (per device).
    pub fused_gates: usize,
    /// Global-qubit slot swaps performed.
    pub swaps: usize,
    /// Bytes each device pushed over the interconnect.
    pub exchanged_bytes_per_device: u64,
    /// Modeled end-to-end time, seconds (max over device timelines).
    pub simulated_seconds: f64,
    /// Total state memory across devices, bytes.
    pub state_bytes_total: u64,
    /// Outcomes of in-circuit measurements, in order.
    pub measurements: Vec<(Vec<usize>, usize)>,
}

/// A state vector sharded across several modeled devices of one flavor.
pub struct MultiGcdBackend {
    flavor: Flavor,
    topology: Topology,
    devices: Vec<Gpu>,
}

impl MultiGcdBackend {
    /// `num_devices` (a power of two) devices of the flavor's default
    /// spec, joined by in-package Infinity Fabric (or NVLink for the
    /// Nvidia flavors).
    pub fn new(flavor: Flavor, num_devices: usize) -> Self {
        let link = match flavor {
            Flavor::Cuda | Flavor::CuStateVec => LinkSpec::nvlink3(),
            _ => LinkSpec::infinity_fabric_in_package(),
        };
        Self::with_link(flavor, num_devices, link)
    }

    /// Devices joined by a uniform link model.
    pub fn with_link(flavor: Flavor, num_devices: usize, link: LinkSpec) -> Self {
        Self::with_topology(flavor, num_devices, Topology::Uniform(link))
    }

    /// Devices joined by an explicit topology (e.g.
    /// [`Topology::frontier_node`] for the in-package/cross-package
    /// hierarchy of the paper's testbed).
    pub fn with_topology(flavor: Flavor, num_devices: usize, topology: Topology) -> Self {
        assert!(
            num_devices.is_power_of_two() && num_devices >= 1,
            "device count must be a power of two, got {num_devices}"
        );
        let devices = (0..num_devices).map(|_| Gpu::new(flavor.default_spec())).collect();
        MultiGcdBackend { flavor, topology, devices }
    }

    /// Number of devices.
    pub fn num_devices(&self) -> usize {
        self.devices.len()
    }

    fn validate(&self, fused: &FusedCircuit) -> Result<(usize, usize), BackendError> {
        let n = fused.num_qubits;
        let d = self.devices.len().trailing_zeros() as usize;
        if n == 0 || n > qsim_core::statevec::MAX_QUBITS {
            return Err(BackendError::InvalidCircuit(format!("unsupported qubit count {n}")));
        }
        if d >= n {
            return Err(BackendError::InvalidCircuit(format!(
                "{} devices need more than {n} qubits",
                self.devices.len()
            )));
        }
        let m = n - d;
        for g in fused.unitaries() {
            if g.qubits.len() > m {
                return Err(BackendError::InvalidCircuit(format!(
                    "a {}-qubit fused gate cannot be made local with only {m} local qubits \
                     per device (re-fuse with a smaller max_fused_qubits)",
                    g.qubits.len()
                )));
            }
            if g.qubits.iter().any(|&q| q >= n) {
                return Err(BackendError::InvalidCircuit("gate qubit out of range".into()));
            }
        }
        Ok((d, m))
    }

    /// Charge one global↔local slot swap (of global id bit `t`) to every
    /// device's timeline and return the per-device bytes pushed.
    fn charge_swap(
        &self,
        shard_len: usize,
        amp_bytes: usize,
        t: usize,
    ) -> Result<u64, BackendError> {
        let bytes_each_way = (shard_len / 2 * amp_bytes) as u64;
        let dur_us = self.topology.link_for_bit(t).exchange_seconds(bytes_each_way) * 1e6;
        for gpu in &self.devices {
            gpu.charge_custom("GlobalSwapExchange", SpanKind::MemcpyD2D, StreamId::DEFAULT, dur_us)
                .map_err(BackendError::Gpu)?;
        }
        Ok(bytes_each_way)
    }

    /// Move physical slot `global_slot` (≥ m) into local slot
    /// `local_slot` in the *data*, for all device pairs.
    fn exchange_data<F: Float>(
        buffers: &mut [DeviceBuffer<Cplx<F>>],
        m: usize,
        local_slot: usize,
        global_slot: usize,
    ) {
        let t = global_slot - m;
        let pair_bit = 1usize << t;
        let a_bit = 1usize << local_slot;
        let shard_len = buffers[0].len();
        for r0 in 0..buffers.len() {
            if r0 & pair_bit != 0 {
                continue;
            }
            let r1 = r0 | pair_bit;
            let (lo, hi) = buffers.split_at_mut(r1);
            let b0 = lo[r0].as_mut_slice();
            let b1 = hi[0].as_mut_slice();
            for i in 0..shard_len {
                if i & a_bit == 0 {
                    std::mem::swap(&mut b0[i | a_bit], &mut b1[i]);
                }
            }
        }
    }

    /// Make every target of `qubits` local, updating `layout`, moving
    /// data when `buffers` is provided, and charging the interconnect.
    /// Returns `(swaps, bytes_per_device)`.
    fn localize<F: Float>(
        &self,
        layout: &mut QubitLayout,
        qubits: &[usize],
        m: usize,
        amp_bytes: usize,
        mut buffers: Option<&mut [DeviceBuffer<Cplx<F>>]>,
    ) -> Result<(usize, u64), BackendError> {
        let mut swaps = 0;
        let mut bytes = 0u64;
        let shard_len = 1usize << m;
        for &q in qubits {
            if layout.is_local(q) {
                continue;
            }
            let global_slot = layout.slot_of(q);
            let local_slot = layout.pick_victim(qubits);
            if let Some(bufs) = buffers.as_deref_mut() {
                Self::exchange_data(bufs, m, local_slot, global_slot);
            }
            layout.swap_slots(local_slot, global_slot);
            bytes += self.charge_swap(shard_len, amp_bytes, global_slot - m)?;
            swaps += 1;
        }
        Ok((swaps, bytes))
    }

    /// The gate's matrix re-expressed over its (sorted) physical slots.
    fn physical_matrix<F: Float>(
        layout: &QubitLayout,
        qubits: &[usize],
        matrix: &GateMatrix<f64>,
    ) -> (Vec<usize>, GateMatrix<F>) {
        let slots: Vec<usize> = qubits.iter().map(|&q| layout.slot_of(q)).collect();
        let mut sorted = slots.clone();
        sorted.sort_unstable();
        let m64 = if sorted == slots {
            matrix.clone()
        } else {
            let perm: Vec<usize> = slots
                .iter()
                .map(|s| sorted.iter().position(|x| x == s).expect("slot present"))
                .collect();
            permute_matrix_bits(matrix, &perm)
        };
        (sorted, m64.cast())
    }

    fn t0(&self) -> f64 {
        self.devices.iter().map(|g| g.synchronize()).fold(0.0, f64::max)
    }

    fn makespan(&self) -> f64 {
        self.devices.iter().map(|g| g.synchronize()).fold(0.0, f64::max)
    }

    /// Functional + modeled execution from `|0…0⟩`.
    pub fn run<F: Float>(
        &self,
        fused: &FusedCircuit,
        opts: &RunOptions,
    ) -> Result<(StateVector<F>, DistReport), BackendError> {
        let (d, m) = self.validate(fused)?;
        let shard_len = 1usize << m;
        let amp_bytes = F::PRECISION.amplitude_bytes();
        let dp = F::PRECISION == Precision::Double;
        let mut rng = StdRng::seed_from_u64(opts.seed);
        let mut layout = QubitLayout::new(fused.num_qubits, m);
        let mut measurements = Vec::new();

        let t0 = self.t0();
        let mut buffers: Vec<DeviceBuffer<Cplx<F>>> = self
            .devices
            .iter()
            .map(|g| g.malloc::<Cplx<F>>(shard_len))
            .collect::<Result<_, GpuError>>()?;
        let init = init_kernel_desc(self.flavor, shard_len, amp_bytes, dp);
        for (r, gpu) in self.devices.iter().enumerate() {
            let buf = &mut buffers[r];
            gpu.launch(&init, StreamId::DEFAULT, || {
                if r == 0 {
                    buf.as_mut_slice()[0] = Cplx::one();
                }
            })?;
        }

        let mut swaps = 0usize;
        let mut exchanged = 0u64;
        for op in &fused.ops {
            match op {
                FusedOp::Unitary(g) => {
                    let (s, b) =
                        self.localize(&mut layout, &g.qubits, m, amp_bytes, Some(&mut buffers))?;
                    swaps += s;
                    exchanged += b;
                    let (slots, matrix) = Self::physical_matrix::<F>(&layout, &g.qubits, &g.matrix);
                    let desc = gate_kernel_desc(self.flavor, m, &slots, amp_bytes, dp, None);
                    for (r, gpu) in self.devices.iter().enumerate() {
                        let buf = &mut buffers[r];
                        gpu.launch(&desc, StreamId::DEFAULT, || {
                            apply_gate_slice_par(buf.as_mut_slice(), &slots, &matrix);
                        })?;
                    }
                }
                FusedOp::Measurement { qubits, .. } => {
                    // Gather to host in logical order, measure, scatter
                    // back; charged as one full D2H + H2D round trip.
                    let mut logical = self.gather_logical(&buffers, &layout, m);
                    for gpu in &self.devices {
                        gpu.charge_memcpy(
                            SpanKind::MemcpyD2H,
                            (shard_len * amp_bytes) as u64,
                            StreamId::DEFAULT,
                        )?;
                    }
                    let outcome = measure_slice(&mut logical, qubits, &mut rng);
                    measurements.push((qubits.clone(), outcome));
                    self.scatter_logical(&mut buffers, &layout, m, &logical);
                    for gpu in &self.devices {
                        gpu.charge_memcpy(
                            SpanKind::MemcpyH2D,
                            (shard_len * amp_bytes) as u64,
                            StreamId::DEFAULT,
                        )?;
                    }
                }
            }
        }
        let simulated = (self.makespan() - t0) * 1e-6;

        let state = StateVector::from_amplitudes(self.gather_logical(&buffers, &layout, m));
        let report = DistReport {
            backend: self.flavor.label().into(),
            devices: self.devices.len(),
            local_qubits: m,
            num_qubits: fused.num_qubits,
            precision: F::PRECISION,
            fused_gates: fused.num_unitaries(),
            swaps,
            exchanged_bytes_per_device: exchanged,
            simulated_seconds: simulated,
            state_bytes_total: (shard_len * amp_bytes * self.devices.len()) as u64,
            measurements,
        };
        let _ = d;
        Ok((state, report))
    }

    /// Collect shards into a logically-ordered amplitude vector.
    fn gather_logical<F: Float>(
        &self,
        buffers: &[DeviceBuffer<Cplx<F>>],
        layout: &QubitLayout,
        m: usize,
    ) -> Vec<Cplx<F>> {
        let n = layout.num_qubits();
        let mask = (1usize << m) - 1;
        (0..1usize << n)
            .map(|l| {
                let p = layout.physical_index(l);
                buffers[p >> m].as_slice()[p & mask]
            })
            .collect()
    }

    /// Write a logically-ordered amplitude vector back into the shards.
    fn scatter_logical<F: Float>(
        &self,
        buffers: &mut [DeviceBuffer<Cplx<F>>],
        layout: &QubitLayout,
        m: usize,
        logical: &[Cplx<F>],
    ) {
        let mask = (1usize << m) - 1;
        for (l, &amp) in logical.iter().enumerate() {
            let p = layout.physical_index(l);
            buffers[p >> m].as_mut_slice()[p & mask] = amp;
        }
    }

    /// Dry run: modeled timing without allocating or computing.
    pub fn estimate(
        &self,
        fused: &FusedCircuit,
        precision: Precision,
    ) -> Result<DistReport, BackendError> {
        let (_, m) = self.validate(fused)?;
        let shard_len = 1usize << m;
        let amp_bytes = precision.amplitude_bytes();
        let dp = precision == Precision::Double;
        let shard_bytes = (shard_len * amp_bytes) as u64;
        let spec_mem = self.devices[0].spec().memory_bytes;
        if shard_bytes > spec_mem {
            return Err(BackendError::Gpu(GpuError::OutOfMemory {
                requested_bytes: shard_bytes,
                free_bytes: spec_mem,
            }));
        }
        let mut layout = QubitLayout::new(fused.num_qubits, m);

        let t0 = self.t0();
        let init = init_kernel_desc(self.flavor, shard_len, amp_bytes, dp);
        for gpu in &self.devices {
            gpu.charge_launch(&init, StreamId::DEFAULT)?;
        }
        let mut swaps = 0usize;
        let mut exchanged = 0u64;
        for op in &fused.ops {
            match op {
                FusedOp::Unitary(g) => {
                    let (s, b) =
                        self.localize::<f32>(&mut layout, &g.qubits, m, amp_bytes, None)?;
                    swaps += s;
                    exchanged += b;
                    let mut slots: Vec<usize> =
                        g.qubits.iter().map(|&q| layout.slot_of(q)).collect();
                    slots.sort_unstable();
                    let desc = gate_kernel_desc(self.flavor, m, &slots, amp_bytes, dp, None);
                    for gpu in &self.devices {
                        gpu.charge_launch(&desc, StreamId::DEFAULT)?;
                    }
                }
                FusedOp::Measurement { .. } => {
                    for gpu in &self.devices {
                        gpu.charge_memcpy(SpanKind::MemcpyD2H, shard_bytes, StreamId::DEFAULT)?;
                        gpu.charge_memcpy(SpanKind::MemcpyH2D, shard_bytes, StreamId::DEFAULT)?;
                    }
                }
            }
        }
        let simulated = (self.makespan() - t0) * 1e-6;
        Ok(DistReport {
            backend: self.flavor.label().into(),
            devices: self.devices.len(),
            local_qubits: m,
            num_qubits: fused.num_qubits,
            precision,
            fused_gates: fused.num_unitaries(),
            swaps,
            exchanged_bytes_per_device: exchanged,
            simulated_seconds: simulated,
            state_bytes_total: shard_bytes * self.devices.len() as u64,
            measurements: Vec::new(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_backends::SimBackend;
    use qsim_circuit::{generate_rqc, library, RqcOptions};
    use qsim_fusion::fuse;

    fn single_device_state(fused: &FusedCircuit) -> StateVector<f64> {
        SimBackend::new(Flavor::Hip)
            .run::<f64>(fused, &RunOptions::default())
            .expect("single run")
            .0
    }

    #[test]
    fn one_device_matches_single_backend() {
        let fused = fuse(&library::ghz(8), 3);
        let dist = MultiGcdBackend::new(Flavor::Hip, 1);
        let (state, report) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
        assert_eq!(report.swaps, 0);
        assert!(single_device_state(&fused).max_abs_diff(&state) < 1e-14);
    }

    #[test]
    fn sharded_rqc_matches_single_device() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(10, 8, 21));
        for f in [2usize, 3, 4] {
            let fused = fuse(&circuit, f);
            let reference = single_device_state(&fused);
            for devices in [2usize, 4, 8] {
                let dist = MultiGcdBackend::new(Flavor::Hip, devices);
                let (state, report) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
                let diff = reference.max_abs_diff(&state);
                assert!(diff < 1e-12, "D={devices} f={f}: diff {diff}");
                // Global gates exist in an RQC this wide, so swaps happen.
                if devices > 1 {
                    assert!(report.swaps > 0, "D={devices} f={f}");
                    assert!(report.exchanged_bytes_per_device > 0);
                }
            }
        }
    }

    #[test]
    fn qft_sharded_matches() {
        let fused = fuse(&library::qft(9), 3);
        let reference = single_device_state(&fused);
        let dist = MultiGcdBackend::new(Flavor::Cuda, 4);
        let (state, _) = dist.run::<f64>(&fused, &RunOptions::default()).expect("run");
        assert!(reference.max_abs_diff(&state) < 1e-12);
    }

    #[test]
    fn estimate_matches_run_timing() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(10, 6, 3));
        let fused = fuse(&circuit, 3);
        for devices in [1usize, 2, 4] {
            let a = MultiGcdBackend::new(Flavor::Hip, devices);
            let run_report = a.run::<f32>(&fused, &RunOptions::default()).expect("run").1;
            let b = MultiGcdBackend::new(Flavor::Hip, devices);
            let est = b.estimate(&fused, Precision::Single).expect("estimate");
            assert_eq!(run_report.swaps, est.swaps, "D={devices}");
            assert!(
                (run_report.simulated_seconds - est.simulated_seconds).abs() < 1e-9,
                "D={devices}"
            );
        }
    }

    #[test]
    fn measurement_in_sharded_state() {
        let mut c = qsim_circuit::Circuit::new(6);
        use qsim_circuit::gates::GateKind;
        c.push(GateKind::H, &[0]);
        for q in 1..6 {
            c.push(GateKind::Cnot, &[q - 1, q]);
        }
        c.push(GateKind::Measurement, &[0, 1, 2, 3, 4, 5]);
        let fused = fuse(&c, 2);
        for seed in 0..10 {
            let dist = MultiGcdBackend::new(Flavor::Hip, 4);
            let (state, report) =
                dist.run::<f64>(&fused, &RunOptions { seed, sample_count: 0 }).expect("run");
            let (_, outcome) = &report.measurements[0];
            assert!(*outcome == 0 || *outcome == 0b111111, "GHZ gave {outcome:06b}");
            assert!((state.amplitude(*outcome).abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn two_level_topology_is_slower_than_uniform_fast_links() {
        use crate::interconnect::Topology;
        let circuit = generate_rqc(&RqcOptions::paper_q30());
        let fused = fuse(&circuit, 4);
        let uniform = MultiGcdBackend::new(Flavor::Hip, 4)
            .estimate(&fused, Precision::Single)
            .expect("estimate");
        let hierarchical =
            MultiGcdBackend::with_topology(Flavor::Hip, 4, Topology::frontier_node())
                .estimate(&fused, Precision::Single)
                .expect("estimate");
        // Same swaps and functional behaviour, slower cross-package links.
        assert_eq!(uniform.swaps, hierarchical.swaps);
        assert!(hierarchical.simulated_seconds > uniform.simulated_seconds);
        // ...and functional equivalence is unaffected by topology.
        let small = fuse(&generate_rqc(&RqcOptions::for_qubits(8, 4, 2)), 2);
        let (a, _) = MultiGcdBackend::new(Flavor::Hip, 4)
            .run::<f64>(&small, &RunOptions::default())
            .expect("run");
        let (b, _) = MultiGcdBackend::with_topology(Flavor::Hip, 4, Topology::frontier_node())
            .run::<f64>(&small, &RunOptions::default())
            .expect("run");
        assert!(a.max_abs_diff(&b) < 1e-15);
    }

    #[test]
    fn capacity_grows_with_devices() {
        // 34 qubits single precision = 128 GiB: too big for one GCD once
        // you go to 35, but 2 devices halve the shard.
        let c = qsim_circuit::Circuit::new(35);
        let fused = fuse(&c, 2);
        assert!(MultiGcdBackend::new(Flavor::Hip, 1).estimate(&fused, Precision::Single).is_err());
        assert!(MultiGcdBackend::new(Flavor::Hip, 2).estimate(&fused, Precision::Single).is_ok());
    }

    #[test]
    fn too_wide_gate_for_shard_is_rejected() {
        let circuit = generate_rqc(&RqcOptions::for_qubits(6, 4, 1));
        let fused = fuse(&circuit, 4);
        // 16 devices leave only 2 local qubits; a 4-qubit fused gate
        // cannot be localized.
        let dist = MultiGcdBackend::new(Flavor::Hip, 16);
        assert!(matches!(
            dist.estimate(&fused, Precision::Single),
            Err(BackendError::InvalidCircuit(_))
        ));
    }

    #[test]
    fn more_devices_fewer_seconds_at_scale() {
        // Strong scaling on the paper's 30-qubit RQC: 2 GCDs beat 1
        // despite the interconnect traffic.
        let circuit = generate_rqc(&RqcOptions::paper_q30());
        let fused = fuse(&circuit, 4);
        let t1 = MultiGcdBackend::new(Flavor::Hip, 1)
            .estimate(&fused, Precision::Single)
            .expect("estimate")
            .simulated_seconds;
        let t2 = MultiGcdBackend::new(Flavor::Hip, 2)
            .estimate(&fused, Precision::Single)
            .expect("estimate")
            .simulated_seconds;
        assert!(t2 < t1, "2 GCDs {t2} should beat 1 GCD {t1}");
        // ...but far from perfectly (swap traffic): parallel efficiency
        // below 100 %.
        assert!(t2 > t1 / 2.0, "scaling cannot be super-linear: {t2} vs {t1}");
    }
}
