//! Property tests for the sharded backend: a distributed run over 2, 4,
//! or 8 modeled devices must be **bit-for-bit** equal to the
//! single-device `SimBackend` — same amplitude bits, same mid-circuit
//! measurement outcomes, same samples — across flavors and precisions;
//! and the lookahead swap scheduler must never exceed the naive eager
//! swap count (or its exchanged bytes) on any circuit.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use qsim_backends::{Flavor, RunOptions, SimBackend};
use qsim_circuit::circuit::Circuit;
use qsim_circuit::gates::GateKind;
use qsim_core::types::Float;
use qsim_distributed::{MultiGcdBackend, SwapPolicy, SwapSchedule};
use qsim_fusion::fuse;

/// A random circuit mixing one-qubit gates, two-qubit gates, and
/// mid-circuit measurements (measurements force the sharded backend's
/// gather/measure/scatter path and consume the same RNG stream as the
/// single-device run).
fn random_circuit(n: usize, ops: usize, seed: u64) -> Circuit {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut c = Circuit::new(n);
    for t in 0..ops {
        let a: f64 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let b: f64 = rng.gen_range(-std::f64::consts::PI..std::f64::consts::PI);
        let kind = match rng.gen_range(0..12) {
            0 => GateKind::H,
            1 => GateKind::T,
            2 => GateKind::X12,
            3 => GateKind::Y12,
            4 => GateKind::Rx(a),
            5 => GateKind::Ry(a),
            6 => GateKind::Rz(a),
            7 => GateKind::Cz,
            8 => GateKind::Cnot,
            9 => GateKind::ISwap,
            10 => GateKind::FSim(a, b),
            _ => GateKind::Measurement,
        };
        match kind.num_qubits() {
            1 => {
                c.add(t, kind, &[rng.gen_range(0..n)]);
            }
            _ => {
                let q0 = rng.gen_range(0..n);
                let mut q1 = rng.gen_range(0..n);
                while q1 == q0 {
                    q1 = rng.gen_range(0..n);
                }
                c.add(t, kind, &[q0, q1]);
            }
        }
    }
    c
}

/// Run `fused` on the single-device backend and on `devices` shards, and
/// assert the final states match to within `tol`, with measurement
/// records and samples identical.
fn assert_matches_single<F: Float>(
    flavor: Flavor,
    fused: &qsim_fusion::FusedCircuit,
    devices: usize,
    opts: &RunOptions,
    tol: f64,
) -> Result<(), TestCaseError> {
    let (ref_state, ref_report) = SimBackend::new(flavor)
        .run::<F>(fused, opts)
        .map_err(|e| TestCaseError::fail(format!("single-device run failed: {e}")))?;
    let dist = MultiGcdBackend::new(flavor, devices);
    let (state, report) = dist
        .run::<F>(fused, opts)
        .map_err(|e| TestCaseError::fail(format!("D={devices} run failed: {e}")))?;

    // Measurement outcomes and samples are discrete: both paths measure
    // the logically-ordered state with the same seeded RNG stream, so
    // they must be *exactly* equal, regardless of amplitude rounding.
    prop_assert_eq!(&report.measurements, &ref_report.measurements);
    prop_assert_eq!(&report.samples, &ref_report.samples);

    // Amplitudes: the sharded sweep applies each fused matrix over
    // *physical* slots, whose sorted order can permute the matvec's
    // summation order relative to the single-device sweep — so equality
    // is exact up to that reassociation. `tol` is a few ulps of the
    // working precision; a layout/exchange bug shows up orders of
    // magnitude above it.
    let diff = ref_state.max_abs_diff(&state);
    prop_assert!(
        diff <= tol,
        "D={} {:?}: max |amp| diff {} exceeds {}",
        devices,
        flavor,
        diff,
        tol
    );
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Distributed ≡ single-device over device counts 2/4/8, the HIP and
    /// CUDA flavors, both precisions, and random circuits with
    /// mid-circuit measurements.
    #[test]
    fn sharded_run_matches_single_device(
        n in 6usize..=9,
        ops in 8usize..=24,
        circuit_seed in 0u64..400,
        max_fused in 2usize..=3,
        seed in 0u64..50,
        sample_count in prop::sample::select(vec![0usize, 32]),
    ) {
        let fused = fuse(&random_circuit(n, ops, circuit_seed), max_fused);
        let opts = RunOptions { seed, sample_count };
        for flavor in [Flavor::Hip, Flavor::Cuda] {
            for devices in [2usize, 4, 8] {
                // d id bits must leave room for the widest fused gate.
                if n - (devices.trailing_zeros() as usize) < max_fused {
                    continue;
                }
                assert_matches_single::<f64>(flavor, &fused, devices, &opts, 1e-12)?;
                assert_matches_single::<f32>(flavor, &fused, devices, &opts, 1e-4)?;
            }
        }
    }

    /// The lookahead scheduler never exceeds the eager baseline's swap
    /// count or exchanged bytes, on any circuit and shard geometry.
    #[test]
    fn scheduler_never_exceeds_naive_swaps(
        n in 6usize..=10,
        ops in 6usize..=30,
        circuit_seed in 400u64..800,
        max_fused in 1usize..=3,
        d in 1usize..=3,
    ) {
        let fused = fuse(&random_circuit(n, ops, circuit_seed), max_fused);
        let m = n - d;
        if m < max_fused {
            return Ok(()); // geometry cannot hold the widest fused gate
        }
        let eager = SwapSchedule::plan(&fused, m, SwapPolicy::Eager)
            .map_err(|e| TestCaseError::fail(format!("eager plan: {e}")))?;
        let ahead = SwapSchedule::plan(&fused, m, SwapPolicy::Lookahead)
            .map_err(|e| TestCaseError::fail(format!("lookahead plan: {e}")))?;
        prop_assert!(
            ahead.swaps <= eager.swaps,
            "lookahead {} swaps vs eager {}",
            ahead.swaps,
            eager.swaps
        );
        let shard_len = 1usize << m;
        for amp_bytes in [8usize, 16] {
            prop_assert!(
                ahead.bytes_per_device(shard_len, amp_bytes)
                    <= eager.bytes_per_device(shard_len, amp_bytes),
                "lookahead moves more bytes than eager at amp_bytes={}",
                amp_bytes
            );
        }
    }
}
