//! A minimal Rust lexer for the concurrency lints.
//!
//! The workspace is fully offline (no `syn`), so the source-level
//! analyses are built on a hand-rolled token stream. The lexer only
//! needs to be faithful enough that *token patterns* — `.lock()`,
//! `let mut g =`, `#[cfg(test)]`, `struct X { f: Mutex<T> }` — can be
//! matched without being fooled by strings, char literals, lifetimes,
//! raw strings, or comments. It is not a general-purpose Rust lexer:
//! numeric literals are kept as opaque text and multi-character
//! operators are emitted as single-character punctuation.
//!
//! Comments are *not* part of the token stream (pattern matching stays
//! simple) but are collected per line, because the unsafe-hygiene rule
//! needs to see `// SAFETY:` text and the model honors
//! `// conc-lint: untracked` markers.

/// Token classes the analyses distinguish.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`fn`, `lock`, `JobQueue`, …).
    Ident,
    /// Single punctuation character (`.`, `{`, `<`, …). Multi-character
    /// operators appear as consecutive tokens.
    Punct,
    /// String/char/numeric literal, kept as opaque text (string literals
    /// retain their quotes so annotation strings can be recovered).
    Lit,
    /// Lifetime marker (`'a`), kept so it is never confused with a char
    /// literal.
    Lifetime,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
}

impl Tok {
    /// Is this the identifier `s`?
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// Is this the punctuation character `c`?
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Lexer output: the comment-free token stream plus per-line comment
/// text (a line holding several comments gets them concatenated).
#[derive(Debug, Default)]
pub struct Lexed {
    pub toks: Vec<Tok>,
    /// `(line, text)` of every comment, in source order. Block comments
    /// are recorded on their starting line with their full text.
    pub comments: Vec<(u32, String)>,
}

/// Lex `src`. Invalid input never panics — unterminated literals simply
/// run to end of file, matching how much structure the analyses need.
pub fn lex(src: &str) -> Lexed {
    let b = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_ascii_whitespace() => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i;
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
                out.comments.push((line, src[start..i].to_string()));
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let (start, start_line) = (i, line);
                let mut depth = 1usize;
                i += 2;
                while i < b.len() && depth > 0 {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'/' && i + 1 < b.len() && b[i + 1] == b'*' {
                        depth += 1;
                        i += 2;
                    } else if b[i] == b'*' && i + 1 < b.len() && b[i + 1] == b'/' {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                out.comments.push((start_line, src[start..i].to_string()));
            }
            b'r' | b'b' if is_raw_string_start(b, i) => {
                let start = i;
                // Skip the r/b/br prefix, count the #s, find the quote.
                while i < b.len() && (b[i] == b'r' || b[i] == b'b') {
                    i += 1;
                }
                let mut hashes = 0usize;
                while i < b.len() && b[i] == b'#' {
                    hashes += 1;
                    i += 1;
                }
                debug_assert!(i < b.len() && b[i] == b'"');
                i += 1; // opening quote
                let closer: Vec<u8> =
                    std::iter::once(b'"').chain(std::iter::repeat_n(b'#', hashes)).collect();
                let tok_line = line;
                while i < b.len() {
                    if b[i] == b'\n' {
                        line += 1;
                        i += 1;
                    } else if b[i] == b'"' && b[i..].starts_with(&closer) {
                        i += closer.len();
                        break;
                    } else {
                        i += 1;
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line: tok_line,
                });
            }
            b'"' => {
                let (start, tok_line) = (i, line);
                i += 1;
                while i < b.len() {
                    match b[i] {
                        b'\\' => i += 2,
                        b'"' => {
                            i += 1;
                            break;
                        }
                        b'\n' => {
                            line += 1;
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
                out.toks.push(Tok {
                    kind: TokKind::Lit,
                    text: src[start..i].to_string(),
                    line: tok_line,
                });
            }
            b'\'' => {
                // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                let start = i;
                i += 1;
                if i < b.len() && b[i] == b'\\' {
                    // Escaped char literal.
                    i += 2;
                    while i < b.len() && b[i] != b'\'' {
                        i += 1;
                    }
                    i = (i + 1).min(b.len());
                    out.toks.push(Tok {
                        kind: TokKind::Lit,
                        text: src[start..i].to_string(),
                        line,
                    });
                } else {
                    let ident_end = ident_run(b, i);
                    if ident_end < b.len() && b[ident_end] == b'\'' && ident_end == i + 1 {
                        // 'x' — single char then closing quote.
                        i = ident_end + 1;
                        out.toks.push(Tok {
                            kind: TokKind::Lit,
                            text: src[start..i].to_string(),
                            line,
                        });
                    } else if ident_end > i {
                        // 'name not followed by a quote: lifetime.
                        i = ident_end;
                        out.toks.push(Tok {
                            kind: TokKind::Lifetime,
                            text: src[start..i].to_string(),
                            line,
                        });
                    } else {
                        // Punctuation char literal like '(' or ' '.
                        i += 1;
                        while i < b.len() && b[i] != b'\'' && b[i] != b'\n' {
                            i += 1;
                        }
                        i = (i + 1).min(b.len());
                        out.toks.push(Tok {
                            kind: TokKind::Lit,
                            text: src[start..i].to_string(),
                            line,
                        });
                    }
                }
            }
            c if c == b'_' || c.is_ascii_alphabetic() => {
                let start = i;
                i = ident_run(b, i);
                out.toks.push(Tok { kind: TokKind::Ident, text: src[start..i].to_string(), line });
            }
            c if c.is_ascii_digit() => {
                let start = i;
                i += 1;
                while i < b.len() {
                    let d = b[i];
                    if d == b'_' || d.is_ascii_alphanumeric() {
                        i += 1;
                    } else if d == b'.'
                        && i + 1 < b.len()
                        && b[i + 1].is_ascii_digit()
                        && !src[start..i].contains('.')
                    {
                        // Decimal point, but never eat the `..` of a range.
                        i += 1;
                    } else {
                        break;
                    }
                }
                out.toks.push(Tok { kind: TokKind::Lit, text: src[start..i].to_string(), line });
            }
            _ => {
                out.toks.push(Tok { kind: TokKind::Punct, text: (c as char).to_string(), line });
                i += 1;
            }
        }
    }
    out
}

/// Does `r`/`b` at `i` begin a raw or byte string (`r"`, `r#`, `br"`,
/// `b"`, …) rather than an identifier?
fn is_raw_string_start(b: &[u8], i: usize) -> bool {
    let mut j = i;
    while j < b.len() && (b[j] == b'r' || b[j] == b'b') && j - i < 2 {
        j += 1;
    }
    let mut k = j;
    while k < b.len() && b[k] == b'#' {
        k += 1;
    }
    k < b.len() && b[k] == b'"' && (k > j || j > i)
}

/// End of the identifier run starting at `i`.
fn ident_run(b: &[u8], i: usize) -> usize {
    let mut j = i;
    while j < b.len() && (b[j] == b'_' || b[j].is_ascii_alphanumeric()) {
        j += 1;
    }
    j
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src).toks.into_iter().filter(|t| t.kind == TokKind::Ident).map(|t| t.text).collect()
    }

    #[test]
    fn strings_and_comments_do_not_leak_tokens() {
        let src = r#"
            // a .lock() in a comment
            /* and .lock() in a block /* nested */ comment */
            let s = "not a .lock() call";
            let c = '{';
            let l: &'static str = s;
        "#;
        let ids = idents(src);
        assert!(!ids.contains(&"lock".to_string()));
        assert!(ids.contains(&"static".to_string()) || !ids.is_empty());
        let lexed = lex(src);
        assert_eq!(lexed.comments.len(), 2);
        assert!(lexed.comments[0].1.contains("a .lock() in a comment"));
        // The '{' char literal must not unbalance brace matching.
        let braces = lexed.toks.iter().filter(|t| t.is_punct('{') || t.is_punct('}')).count();
        assert_eq!(braces, 0);
    }

    #[test]
    fn raw_strings_and_lifetimes() {
        let src = r##"let r = r#"raw "quoted" body"#; fn f<'a>(x: &'a str) {}"##;
        let lexed = lex(src);
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lit && t.text.starts_with("r#")));
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lifetime && t.text == "'a"));
        assert!(lexed.toks.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn lines_are_tracked() {
        let src = "fn a() {}\nfn b() {}\n";
        let lexed = lex(src);
        let b_tok = lexed.toks.iter().find(|t| t.is_ident("b")).unwrap();
        assert_eq!(b_tok.line, 2);
    }

    #[test]
    fn numbers_do_not_eat_ranges() {
        let src = "for i in 0..10 { x[i] = 1.5e3; }";
        let lexed = lex(src);
        let dots = lexed.toks.iter().filter(|t| t.is_punct('.')).count();
        assert_eq!(dots, 2, "the `..` must remain two punct tokens");
        assert!(lexed.toks.iter().any(|t| t.kind == TokKind::Lit && t.text == "1.5e3"));
    }
}
