//! Workspace concurrency lints (`QL03xx`).
//!
//! This module is a source-level analyzer for the workspace's own
//! concurrency conventions, built for the serve/batch layer where locks,
//! condition variables, pooled buffers, and admission ledgers interact:
//!
//! * a **lock-acquisition graph** over declared lock sites, with
//!   inversions and deadlock-shaped cycles reported as [`codes::LOCK_CYCLE`];
//! * **guards held across blocking boundaries** (backend runs, condvar
//!   waits on other locks, thread joins, TCP I/O, rayon entry) as
//!   [`codes::HELD_ACROSS_BLOCKING`], propagated through a call-graph
//!   fixpoint;
//! * **RAII discipline** for admission/pool accounting values as
//!   [`codes::RAII_ESCAPE`];
//! * mechanical **unsafe hygiene**: `// SAFETY:` comments
//!   ([`codes::UNDOCUMENTED_UNSAFE`]) and ISA-gated intrinsics files
//!   ([`codes::UNGATED_INTRINSICS`]).
//!
//! The pipeline is `lexer` (hand-rolled token stream — the workspace is
//! offline, so no `syn`) → `model` (crates, files, lock sites,
//! functions) → `analysis` (the lints). Everything is lexical: see the
//! module docs of [`analysis`] for the precision contract.
//!
//! Suppression goes through a checked-in allowlist
//! (`CONC_ALLOWLIST.txt`), and stale allowlist entries are themselves
//! errors ([`codes::STALE_ALLOWLIST`]) so the list can only shrink when
//! code improves.

use std::collections::HashSet;
use std::fs;
use std::io;
use std::path::Path;

use qsim_core::diag::{Severity, SourceDiagnostic, SrcSpan};
use serde_json::{json, Value};

pub mod analysis;
pub mod lexer;
pub mod model;

pub use analysis::codes;

/// One allowlist entry: `CODE | file-substring | message-substring |
/// justification`.
#[derive(Debug, Clone)]
pub struct AllowEntry {
    pub code: String,
    pub file_part: String,
    pub msg_part: String,
    pub justification: String,
    /// 1-based line in the allowlist file, for stale-entry reporting.
    pub line: u32,
}

impl AllowEntry {
    fn matches(&self, d: &SourceDiagnostic) -> bool {
        d.code == self.code
            && d.span.file.contains(&self.file_part)
            && d.message.contains(&self.msg_part)
    }
}

/// The parsed allowlist. Lines starting with `#` and blank lines are
/// comments; every other line must have exactly four ` | `-separated
/// fields.
#[derive(Debug, Clone, Default)]
pub struct Allowlist {
    pub entries: Vec<AllowEntry>,
    /// Malformed lines, reported as errors instead of being ignored.
    pub malformed: Vec<(u32, String)>,
}

impl Allowlist {
    pub fn parse(text: &str) -> Allowlist {
        let mut out = Allowlist::default();
        for (idx, raw) in text.lines().enumerate() {
            let line = raw.trim();
            let lineno = (idx + 1) as u32;
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split('|').map(str::trim).collect();
            if parts.len() != 4 || parts[0].is_empty() || parts[3].is_empty() {
                out.malformed.push((lineno, raw.to_string()));
                continue;
            }
            out.entries.push(AllowEntry {
                code: parts[0].to_string(),
                file_part: parts[1].to_string(),
                msg_part: parts[2].to_string(),
                justification: parts[3].to_string(),
                line: lineno,
            });
        }
        out
    }
}

/// The full concurrency-lint result: post-allowlist diagnostics plus the
/// model the graph checks were run on (sites and ordering edges, for
/// `--graph` output and the runtime-tracker subset test).
#[derive(Debug, Default)]
pub struct ConcReport {
    pub diagnostics: Vec<SourceDiagnostic>,
    /// `(identity, kind label, file, line)` of every modeled lock site.
    pub sites: Vec<(String, String, String, u32)>,
    /// Deduplicated ordering edges `(from, to, file, line)` by identity.
    pub edges: Vec<(String, String, String, u32)>,
    /// Diagnostics suppressed by the allowlist (kept for `--json`
    /// transparency).
    pub suppressed: Vec<SourceDiagnostic>,
}

impl ConcReport {
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// Same exit-code policy as [`crate::AnalysisReport::passes`].
    pub fn passes(&self, deny_warnings: bool) -> bool {
        if self.has_errors() {
            return false;
        }
        !deny_warnings || self.count(Severity::Warning) == 0
    }

    /// One line per finding, worst severity first, then a summary.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.diagnostics.len() + 1);
        for severity in [Severity::Error, Severity::Warning, Severity::Note] {
            lines.extend(
                self.diagnostics.iter().filter(|d| d.severity == severity).map(ToString::to_string),
            );
        }
        lines.push(self.summary());
        lines.join("\n")
    }

    pub fn summary(&self) -> String {
        let plural = |n: usize, word: &str| format!("{n} {word}{}", if n == 1 { "" } else { "s" });
        let base = if self.diagnostics.is_empty() {
            "no findings".to_string()
        } else {
            format!(
                "{}, {}",
                plural(self.count(Severity::Error), "error"),
                plural(self.count(Severity::Warning), "warning")
            )
        };
        if self.suppressed.is_empty() {
            base
        } else {
            format!("{base} ({} allowlisted)", self.suppressed.len())
        }
    }

    /// The lock model as text: sites, then ordering edges.
    pub fn render_graph(&self) -> String {
        let mut lines = Vec::new();
        lines.push(format!("lock sites ({}):", self.sites.len()));
        for (site, kind, file, line) in &self.sites {
            lines.push(format!("  {site} [{kind}] at {file}:{line}"));
        }
        lines.push(format!("ordering edges ({}):", self.edges.len()));
        for (from, to, file, line) in &self.edges {
            lines.push(format!("  {from} -> {to} at {file}:{line}"));
        }
        lines.join("\n")
    }

    /// JSON for `qsim_lint --json`: stable field names.
    pub fn to_json(&self) -> Value {
        let diag = |d: &SourceDiagnostic| {
            json!({
                "code": (d.code),
                "severity": (d.severity.label()),
                "file": (d.span.file.as_str()),
                "line": (d.span.line),
                "message": (d.message.as_str()),
                "help": (d.help.as_deref()),
            })
        };
        let findings: Vec<Value> = self.diagnostics.iter().map(diag).collect();
        let suppressed: Vec<Value> = self.suppressed.iter().map(diag).collect();
        let sites: Vec<Value> = self
            .sites
            .iter()
            .map(|(site, kind, file, line)| {
                json!({"site": (site.as_str()), "kind": (kind.as_str()),
                       "file": (file.as_str()), "line": (*line)})
            })
            .collect();
        let edges: Vec<Value> = self
            .edges
            .iter()
            .map(|(from, to, file, line)| {
                json!({"from": (from.as_str()), "to": (to.as_str()),
                       "file": (file.as_str()), "line": (*line)})
            })
            .collect();
        json!({
            "errors": (self.count(Severity::Error)),
            "warnings": (self.count(Severity::Warning)),
            "findings": (Value::Array(findings)),
            "suppressed": (Value::Array(suppressed)),
            "sites": (Value::Array(sites)),
            "edges": (Value::Array(edges)),
        })
    }

    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("report JSON serializes")
    }
}

/// Run the full concurrency-lint pipeline over the workspace at `root`,
/// filtered through `allowlist` (pass [`Allowlist::default`] for none).
pub fn analyze_workspace(root: &Path, allowlist: &Allowlist) -> io::Result<ConcReport> {
    let ws = model::load(root)?;
    let result = analysis::analyze(&ws);
    let mut report = ConcReport::default();

    for s in &ws.sites {
        report.sites.push((s.site.clone(), s.kind.label().to_string(), s.file.clone(), s.line));
    }
    report.sites.sort();

    let mut seen_edges: HashSet<(String, String)> = HashSet::new();
    for (a, b, file, line) in &result.edges {
        let from = ws.sites[*a].site.clone();
        let to = ws.sites[*b].site.clone();
        if seen_edges.insert((from.clone(), to.clone())) {
            report.edges.push((from, to, file.clone(), *line));
        }
    }
    report.edges.sort();

    // Dedupe findings (the same nested acquisition can be rediscovered
    // from several enclosing guards), keep deterministic order.
    let mut diags = result.diags;
    diags.sort_by(|x, y| {
        (x.span.file.as_str(), x.span.line, x.code, x.message.as_str()).cmp(&(
            y.span.file.as_str(),
            y.span.line,
            y.code,
            y.message.as_str(),
        ))
    });
    diags.dedup_by(|x, y| x.code == y.code && x.span == y.span && x.message == y.message);

    // Allowlist filtering with per-entry use tracking: an entry that
    // matches nothing is itself an error.
    let mut used = vec![false; allowlist.entries.len()];
    for d in diags {
        match allowlist.entries.iter().position(|e| e.matches(&d)) {
            Some(i) => {
                used[i] = true;
                report.suppressed.push(d);
            }
            None => report.diagnostics.push(d),
        }
    }
    for (i, entry) in allowlist.entries.iter().enumerate() {
        if !used[i] {
            report.diagnostics.push(
                SourceDiagnostic::error(
                    codes::STALE_ALLOWLIST,
                    SrcSpan::new("CONC_ALLOWLIST.txt".to_string(), entry.line),
                    format!(
                        "allowlist entry `{} | {} | {}` matched no diagnostic",
                        entry.code, entry.file_part, entry.msg_part
                    ),
                )
                .with_help("remove the stale entry so the allowlist cannot mask regressions"),
            );
        }
    }
    for (line, text) in &allowlist.malformed {
        report.diagnostics.push(
            SourceDiagnostic::error(
                codes::STALE_ALLOWLIST,
                SrcSpan::new("CONC_ALLOWLIST.txt".to_string(), *line),
                format!("malformed allowlist line: `{}`", text.trim()),
            )
            .with_help("format: CODE | file-substring | message-substring | justification"),
        );
    }
    Ok(report)
}

/// Convenience wrapper: load the allowlist file when it exists, then
/// analyze. A missing allowlist is an empty allowlist, not an error.
pub fn analyze_workspace_with_allowlist_file(
    root: &Path,
    allowlist_path: &Path,
) -> io::Result<ConcReport> {
    let allowlist = match fs::read_to_string(allowlist_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => return Err(e),
    };
    analyze_workspace(root, &allowlist)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_matches() {
        let text = "\
# comment line

QL0304 | serve/src/worker.rs | unsafe block | SIMD dispatch audited 2026-08
QL0302 | queue.rs | held across | condvar handshake, reviewed
bad line without pipes
";
        let list = Allowlist::parse(text);
        assert_eq!(list.entries.len(), 2);
        assert_eq!(list.malformed.len(), 1);
        assert_eq!(list.entries[0].line, 3);
        let d = SourceDiagnostic::warning(
            "QL0304",
            SrcSpan::new("crates/qsim-serve/src/worker.rs", 10),
            "unsafe block in `f` has no `// SAFETY:` comment",
        );
        assert!(list.entries[0].matches(&d));
        assert!(!list.entries[1].matches(&d));
    }

    #[test]
    fn stale_entries_become_errors() {
        let list = Allowlist::parse("QL0399 | nowhere.rs | never | stale on purpose\n");
        // Empty workspace shape: drive the filter path directly through
        // analyze_workspace would need a real tree; the stale logic is
        // exercised end-to-end by the fixture integration test. Here:
        // the entry must not match an unrelated diagnostic.
        let d = SourceDiagnostic::error("QL0301", SrcSpan::new("a.rs", 1), "lock-order cycle");
        assert!(!list.entries[0].matches(&d));
    }

    #[test]
    fn report_policy_and_render() {
        let mut r = ConcReport::default();
        assert!(r.passes(true));
        r.diagnostics.push(SourceDiagnostic::warning(
            "QL0304",
            SrcSpan::new("x.rs", 3),
            "unsafe block",
        ));
        assert!(r.passes(false));
        assert!(!r.passes(true));
        r.diagnostics.push(SourceDiagnostic::error("QL0301", SrcSpan::new("y.rs", 9), "cycle"));
        assert!(!r.passes(false));
        let text = r.render();
        let err = text.find("error[QL0301]").unwrap();
        let warn = text.find("warning[QL0304]").unwrap();
        assert!(err < warn);
        assert!(text.ends_with("1 error, 1 warning"));
        let json = r.to_json_string();
        assert!(json.contains("\"QL0301\""));
        assert!(json.contains("\"edges\""));
    }
}
