//! The concurrency analyses: lock-acquisition graph construction with a
//! call-graph fixpoint, guards held across blocking boundaries,
//! RAII-escape detection, and the mechanical unsafe-hygiene checks.
//!
//! All analyses are deliberately *lexical over-approximations with
//! documented under-approximations*: guard live ranges follow Rust 2021
//! temporary-lifetime rules (statement temporaries die at the `;`,
//! `if let`/`while let`/`match` scrutinee temporaries live to the end of
//! the construct, `let`-bound guards to the end of the block or an
//! explicit `drop(guard)`), and workspace calls are resolved by bare
//! name with a deny-list of ubiquitous method names (`len`, `clone`,
//! `finish`, …) that would otherwise alias std methods. A denied name
//! is never followed into, so a blocking workspace method that shares a
//! std name can be missed — the price of zero false edges on a
//! name-based call graph.

use std::collections::{HashMap, HashSet};

use qsim_core::diag::{SourceDiagnostic, SrcSpan};

use super::lexer::{Tok, TokKind};
use super::model::{FnDef, LockKind, SourceFile, Workspace};

/// Stable `QL03xx` diagnostic codes. Once published a code is never
/// reused for a different finding.
pub mod codes {
    /// Lock-order cycle: two or more lock sites are acquired in
    /// conflicting orders on some code paths (includes same-site
    /// re-acquisition while held). Severity: error.
    pub const LOCK_CYCLE: &str = "QL0301";
    /// A lock guard is held across a blocking boundary: `Condvar::wait`
    /// on a *different* lock, thread joins, sleeps, TCP/file I/O, rayon
    /// scope entry, or a `SimBackend::run*` call. Severity: error.
    pub const HELD_ACROSS_BLOCKING: &str = "QL0302";
    /// A leak-shaped escape (`mem::forget`, `ManuallyDrop::new`,
    /// `Box::leak`) applied to an RAII accounting value (`Reservation`,
    /// admission/pool acquisitions). Severity: error when the value is
    /// provably tracked, warning otherwise.
    pub const RAII_ESCAPE: &str = "QL0303";
    /// An `unsafe` block without a `// SAFETY:` comment on or directly
    /// above it. Severity: warning (mirrors the workspace clippy
    /// policy).
    pub const UNDOCUMENTED_UNSAFE: &str = "QL0304";
    /// x86 SIMD intrinsics in a file whose inclusion is not gated behind
    /// `cfg(target_arch = …)` (the ISA-dispatch discipline). Severity:
    /// error.
    pub const UNGATED_INTRINSICS: &str = "QL0305";
    /// A `.lock()` receiver that resolves to no declared lock site, an
    /// ambiguous field name, or a `lockorder::track` annotation string
    /// naming no known site. Severity: warning.
    pub const UNRESOLVED_LOCK_SITE: &str = "QL0306";
    /// An allowlist entry that matched no diagnostic — stale entries
    /// must be pruned so the allowlist never hides future regressions.
    /// Severity: error.
    pub const STALE_ALLOWLIST: &str = "QL0307";
    /// `Condvar::wait` outside a `loop`/`while` — condition variables
    /// wake spuriously, so waits must re-check their predicate.
    /// Severity: warning.
    pub const NAKED_CONDVAR_WAIT: &str = "QL0308";
}

/// Method/free-call names that are never resolved against workspace
/// functions: they collide with ubiquitous std inherent methods, so a
/// name-based call graph would invent edges through them.
const CALL_RESOLVE_DENY: &[&str] = &[
    "new",
    "default",
    "clone",
    "len",
    "is_empty",
    "iter",
    "into_iter",
    "next",
    "push",
    "pop",
    "insert",
    "remove",
    "get",
    "get_mut",
    "take",
    "replace",
    "unwrap",
    "expect",
    "map",
    "and_then",
    "or_else",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok",
    "err",
    "is_some",
    "is_none",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "to_string",
    "to_vec",
    "to_owned",
    "into",
    "from",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "finish",
    "write",
    "read",
    "lock",
    "try_lock",
    "drop",
    "name",
    "label",
    "index",
    "extend",
    "collect",
    "filter",
    "count",
    "sum",
    "min",
    "max",
    "abs",
    "sqrt",
    "floor",
    "ceil",
    "round",
    "exp",
    "ln",
    "powi",
    "powf",
    "load",
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "wait",
    "wait_timeout",
    "notify_one",
    "notify_all",
    "join",
    "contains",
    "contains_key",
    "starts_with",
    "ends_with",
    "split",
    "trim",
    "parse",
    "clear",
    "sort",
    "sort_unstable",
    "dedup",
    "reserve",
    "capacity",
    "resize",
    "truncate",
    "first",
    "last",
    "chunks",
    "windows",
    "flatten",
    "zip",
    "rev",
    "skip",
    "enumerate",
    "any",
    "all",
    "find",
    "position",
    "fold",
    "flat_map",
    "cloned",
    "copied",
    "then",
    "send",
    "spawn",
    "elapsed",
    "now",
    "id",
    "kind",
    "get_or_init",
    "with",
    "borrow",
    "borrow_mut",
    "to_json",
    "status",
    "is_terminal",
];

/// Blocking calls detected directly by name. `EmptyOnly` names block
/// only in their zero-argument form (`handle.join()` blocks;
/// `path.join("x")` and `["a"].join(",")` do not).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ArgPolicy {
    Any,
    EmptyOnly,
}

const BLOCKING_CALLS: &[(&str, ArgPolicy)] = &[
    // Thread-level blocking.
    ("sleep", ArgPolicy::Any),
    ("join", ArgPolicy::EmptyOnly),
    ("park", ArgPolicy::EmptyOnly),
    ("recv", ArgPolicy::EmptyOnly),
    ("recv_timeout", ArgPolicy::Any),
    // TCP / stream I/O (the serve wire protocol).
    ("accept", ArgPolicy::EmptyOnly),
    ("incoming", ArgPolicy::EmptyOnly),
    ("connect", ArgPolicy::Any),
    ("read_line", ArgPolicy::Any),
    ("read_to_end", ArgPolicy::Any),
    ("read_to_string", ArgPolicy::Any),
    ("read_exact", ArgPolicy::Any),
    ("write_all", ArgPolicy::Any),
    ("write_fmt", ArgPolicy::Any),
    ("flush", ArgPolicy::EmptyOnly),
    // Rayon entry points: entering a parallel region blocks the calling
    // thread until the region completes.
    ("par_iter", ArgPolicy::Any),
    ("par_iter_mut", ArgPolicy::Any),
    ("into_par_iter", ArgPolicy::Any),
    ("par_chunks", ArgPolicy::Any),
    ("par_chunks_mut", ArgPolicy::Any),
    ("par_extend", ArgPolicy::Any),
    ("par_bridge", ArgPolicy::Any),
    ("scope", ArgPolicy::Any),
    ("install", ArgPolicy::Any),
    // Backend entry points: a simulation run is a long blocking region.
    ("run_with", ArgPolicy::Any),
    ("run_batch", ArgPolicy::Any),
    ("run_plan", ArgPolicy::Any),
];

/// Constructors whose results are RAII accounting values: forgetting
/// them silently corrupts the admission ledger or the buffer pool.
const TRACKED_CTORS: &[&str] = &["try_reserve", "try_admit"];
/// Type names that mark a binding as a tracked RAII value.
const TRACKED_TYPES: &[&str] = &["Reservation"];

/// One lock acquisition with its resolved site and guard live range.
#[derive(Debug, Clone)]
pub struct Acq {
    /// Index into `Workspace::sites`, when resolution succeeded.
    pub site: Option<usize>,
    /// Token index of the receiver-chain start.
    pub pos: usize,
    /// Token index at which the guard dies (inclusive).
    pub end: usize,
    /// `let`-bound guard name, `None` for statement temporaries.
    pub binding: Option<String>,
    pub line: u32,
}

/// Everything the per-function pass extracts.
#[derive(Debug, Default)]
pub struct FnFacts {
    pub acqs: Vec<Acq>,
    /// `(pos, callee name)` of calls eligible for workspace resolution.
    pub calls: Vec<(usize, String)>,
    /// `(pos, description, line)` of directly blocking operations.
    pub blocking: Vec<(usize, String, u32)>,
    /// `(pos, consumed guard name, line, lexically inside loop/while)`
    /// of `Condvar::wait`/`wait_timeout` calls on resolved condvars.
    pub condvar_waits: Vec<(usize, Option<String>, u32, bool)>,
    /// Findings emitted during extraction (QL0303/QL0304/QL0306/QL0308).
    pub diags: Vec<SourceDiagnostic>,
}

/// Analyze one function body.
pub fn fn_facts(ws: &Workspace, f: &FnDef) -> FnFacts {
    let file = &ws.files[f.file_idx];
    let toks = &file.toks;
    let (open, close) = f.body;
    let mut facts = FnFacts::default();

    let mut i = open + 1;
    while i < close {
        let t = &toks[i];
        if t.kind != TokKind::Ident {
            i += 1;
            continue;
        }
        let is_method = i > 0 && toks[i - 1].is_punct('.');
        let has_call_parens = i + 1 < close && toks[i + 1].is_punct('(');

        // Lock acquisition: `.lock()` / `.read()` / `.write()` with no
        // arguments.
        if is_method
            && has_call_parens
            && matches!(t.text.as_str(), "lock" | "read" | "write")
            && i + 2 < close
            && toks[i + 2].is_punct(')')
        {
            record_acquisition(ws, file, f, i, &mut facts);
            i += 3;
            continue;
        }

        // Condvar wait: `.wait(g)` / `.wait_timeout(g, d)`.
        if is_method && has_call_parens && matches!(t.text.as_str(), "wait" | "wait_timeout") {
            record_condvar_wait(ws, file, f, i, &mut facts);
            i += 2;
            continue;
        }

        // Leak-shaped escapes.
        if has_call_parens
            && (t.text == "forget"
                || (t.text == "leak" && path_prefix_is(toks, i, "Box"))
                || (t.text == "new" && path_prefix_is(toks, i, "ManuallyDrop")))
            && !is_method
        {
            record_escape(file, f, i, &mut facts);
            i += 2;
            continue;
        }

        // Undocumented unsafe blocks.
        if t.text == "unsafe" && i + 1 < close && toks[i + 1].is_punct('{') {
            if !safety_comment_above(file, t.line) {
                facts.diags.push(
                    SourceDiagnostic::warning(
                        codes::UNDOCUMENTED_UNSAFE,
                        SrcSpan::new(file.rel_path.clone(), t.line),
                        format!("unsafe block in `{}` has no `// SAFETY:` comment", f.qual),
                    )
                    .with_help("state the invariant that makes the block sound"),
                );
            }
            i += 1;
            continue;
        }

        // Directly blocking calls.
        if has_call_parens {
            if let Some((_, policy)) = BLOCKING_CALLS.iter().find(|(n, _)| *n == t.text.as_str()) {
                let empty = i + 2 < close && toks[i + 2].is_punct(')');
                if *policy == ArgPolicy::Any || empty {
                    facts.blocking.push((i, format!("`{}(…)`", t.text), t.line));
                }
            }
            // Workspace-call resolution candidates (macros `name!(…)`
            // never match: the `(` is preceded by `!`).
            if !is_keyword(&t.text) && !CALL_RESOLVE_DENY.contains(&t.text.as_str()) {
                facts.calls.push((i, t.text.clone()));
            }
        }
        i += 1;
    }
    facts
}

/// Is there a `SAFETY` mention in the comment block ending nearest above
/// `line`? The block may start within two lines of the `unsafe` token
/// (statement continuations intervene) and extends upward through
/// contiguous comment lines — `SAFETY:` on the first line of a four-line
/// comment still counts.
fn safety_comment_above(file: &SourceFile, line: u32) -> bool {
    let mut l = line;
    let mut in_run = false;
    loop {
        if let Some(c) = file.comment_at(l) {
            in_run = true;
            if c.contains("SAFETY") {
                return true;
            }
        } else if in_run || line - l >= 3 {
            // The comment run ended, or no comment starts near enough.
            return false;
        }
        if l == 0 {
            return false;
        }
        l -= 1;
    }
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "fn"
            | "let"
            | "move"
            | "unsafe"
            | "in"
            | "as"
            | "ref"
            | "mut"
            | "box"
            | "await"
            | "dyn"
            | "impl"
            | "where"
            | "use"
            | "pub"
            | "crate"
            | "self"
            | "Self"
            | "super"
            | "mod"
            | "struct"
            | "enum"
            | "trait"
            | "type"
            | "const"
            | "static"
            | "continue"
            | "break"
    )
}

/// Is the identifier at `i` path-prefixed by `prefix` (`Prefix::ident`)?
fn path_prefix_is(toks: &[Tok], i: usize, prefix: &str) -> bool {
    i >= 3 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':') && toks[i - 3].is_ident(prefix)
}

/// Start of the receiver chain ending just before the `.` at `dot`:
/// walks back over idents, `.`/`::`, matched parens, and `& * mut`.
fn chain_start(toks: &[Tok], dot: usize) -> usize {
    let mut k = dot;
    loop {
        if k == 0 {
            return 0;
        }
        let p = &toks[k - 1];
        if p.kind == TokKind::Ident || p.is_punct('.') || p.is_punct(':') {
            k -= 1;
        } else if p.is_punct(')') || p.is_punct(']') {
            // Jump over the group.
            let (open_c, close_c) = if p.is_punct(')') { ('(', ')') } else { ('[', ']') };
            let mut depth = 0i32;
            let mut j = k - 1;
            loop {
                if toks[j].is_punct(close_c) {
                    depth += 1;
                } else if toks[j].is_punct(open_c) {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if j == 0 {
                    break;
                }
                j -= 1;
            }
            k = j;
        } else if p.is_punct('&') || p.is_punct('*') || p.is_ident("mut") {
            k -= 1;
        } else {
            return k;
        }
    }
}

/// Resolve a lock/condvar receiver field name to a site index with
/// same-file → same-crate → global preference. `Err(candidates)` when
/// ambiguous after preference filtering.
fn resolve_site(
    ws: &Workspace,
    file: &SourceFile,
    field: &str,
    want_condvar: Option<bool>,
) -> Result<Option<usize>, Vec<usize>> {
    let matching: Vec<usize> = ws
        .sites
        .iter()
        .enumerate()
        .filter(|(_, s)| {
            s.field == field
                && match want_condvar {
                    Some(true) => s.kind == LockKind::Condvar,
                    Some(false) => s.kind != LockKind::Condvar,
                    None => true,
                }
        })
        .map(|(i, _)| i)
        .collect();
    if matching.is_empty() {
        return Ok(None);
    }
    for pred in [
        |s: &super::model::LockSite, f: &SourceFile| s.file == f.rel_path,
        |s: &super::model::LockSite, f: &SourceFile| s.site.starts_with(&f.crate_name),
        |_: &super::model::LockSite, _: &SourceFile| true,
    ] {
        let narrowed: Vec<usize> =
            matching.iter().copied().filter(|&i| pred(&ws.sites[i], file)).collect();
        match narrowed.len() {
            0 => continue,
            1 => return Ok(Some(narrowed[0])),
            _ => return Err(narrowed),
        }
    }
    Err(matching)
}

fn record_acquisition(ws: &Workspace, file: &SourceFile, f: &FnDef, i: usize, facts: &mut FnFacts) {
    let toks = &file.toks;
    let method = toks[i].text.clone();
    let dot = i - 1;
    let start = chain_start(toks, dot);
    let chain_idents: Vec<&str> = toks[start..dot]
        .iter()
        .filter(|t| t.kind == TokKind::Ident)
        .map(|t| t.text.as_str())
        .collect();
    if chain_idents.iter().any(|c| matches!(*c, "stdout" | "stderr" | "stdin")) {
        return;
    }
    // The receiver field is the last identifier before the `.`.
    let recv = (toks[dot - 1].kind == TokKind::Ident).then(|| toks[dot - 1].text.clone());
    let line = toks[i].line;
    let site = match recv.as_deref() {
        Some(field) => match resolve_site(ws, file, field, Some(false)) {
            Ok(Some(s)) => Some(s),
            Ok(None) => {
                if method == "lock" {
                    facts.diags.push(
                        SourceDiagnostic::warning(
                            codes::UNRESOLVED_LOCK_SITE,
                            SrcSpan::new(file.rel_path.clone(), line),
                            format!(
                                "`.lock()` on `{field}` in `{}` resolves to no declared lock \
                                 site",
                                f.qual
                            ),
                        )
                        .with_help(
                            "declare the field with a Mutex/RwLock type the analyzer can see, \
                             or mark it `// conc-lint: untracked`",
                        ),
                    );
                }
                None
            }
            Err(cands) => {
                let names: Vec<&str> = cands.iter().map(|&c| ws.sites[c].site.as_str()).collect();
                facts.diags.push(
                    SourceDiagnostic::warning(
                        codes::UNRESOLVED_LOCK_SITE,
                        SrcSpan::new(file.rel_path.clone(), line),
                        format!(
                            "`.{method}()` on `{field}` in `{}` is ambiguous between {}",
                            f.qual,
                            names.join(", ")
                        ),
                    )
                    .with_help("rename one of the fields so lock sites resolve uniquely"),
                );
                None
            }
        },
        None => None,
    };
    let (binding, end) = guard_range(file, f, start, i);
    facts.acqs.push(Acq { site, pos: start, end, binding, line });
}

/// Guard liveness: `(binding name, inclusive end token)` for the
/// acquisition whose method ident sits at `m` and whose receiver chain
/// starts at `start`.
fn guard_range(file: &SourceFile, f: &FnDef, start: usize, m: usize) -> (Option<String>, usize) {
    let toks = &file.toks;
    let close_paren = m + 2; // `.lock()` — method, `(`, `)`
    let (_, body_close) = f.body;

    // Is the whole expression a `let`-bound guard? Requires
    // `let [mut] name = <chain>.lock()[.unwrap()|.expect(…)|?]* ;`
    // A leading `*` means the binding is a deref-*copy* of the protected
    // value (`let agg = *self.aggregates.lock();`) — the guard itself is
    // a statement temporary, not the binding.
    let named = (|| {
        if start < 2 || !toks[start - 1].is_punct('=') || toks[start].is_punct('*') {
            return None;
        }
        let name_idx = start - 2;
        if toks[name_idx].kind != TokKind::Ident {
            return None;
        }
        let mut k = name_idx;
        if k >= 1 && toks[k - 1].is_ident("mut") {
            k -= 1;
        }
        if k < 1 || !toks[k - 1].is_ident("let") {
            return None;
        }
        // Adapter chain after the call must preserve the guard.
        let mut j = close_paren + 1;
        loop {
            if j >= toks.len() {
                return None;
            }
            if toks[j].is_punct(';') {
                return Some(toks[name_idx].text.clone());
            }
            if toks[j].is_punct('?') {
                j += 1;
                continue;
            }
            if toks[j].is_punct('.')
                && j + 1 < toks.len()
                && matches!(toks[j + 1].text.as_str(), "unwrap" | "expect" | "unwrap_or_else")
            {
                // Skip the adapter call's argument group.
                let mut p = j + 2;
                if p < toks.len() && toks[p].is_punct('(') {
                    let mut depth = 0i32;
                    while p < toks.len() {
                        if toks[p].is_punct('(') {
                            depth += 1;
                        } else if toks[p].is_punct(')') {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        p += 1;
                    }
                }
                j = p + 1;
                continue;
            }
            return None;
        }
    })();

    if let Some(name) = named {
        // Scope of the innermost enclosing block, truncated at an
        // explicit `drop(name)`.
        let mut scope_end = body_close;
        let mut best_open = 0usize;
        for (&o, &c) in &file.braces {
            if o < c && o < start && c >= m && o >= best_open && c <= scope_end {
                best_open = o;
                scope_end = c;
            }
        }
        let mut j = close_paren;
        while j < scope_end {
            if toks[j].is_ident("drop")
                && j + 3 < toks.len()
                && toks[j + 1].is_punct('(')
                && toks[j + 2].is_ident(&name)
                && toks[j + 3].is_punct(')')
            {
                scope_end = j;
                break;
            }
            j += 1;
        }
        return (Some(name), scope_end);
    }

    // Statement temporary: lives to the `;` — or, when the statement is
    // an `if let`/`while let`/`match`/`for` header, to the end of the
    // whole construct (Rust 2021 scrutinee-temporary rules). Scanning
    // forward: the first `;` at paren depth 0 ends a plain statement; a
    // `{` at depth 0 opens a construct body and the temporary lives to
    // its close (plus any `else` continuation).
    let mut paren = 0i32;
    let mut j = close_paren + 1;
    while j < body_close {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if paren == 0 {
            if t.is_punct(';') {
                return (None, j);
            }
            if t.is_punct('}') {
                return (None, j);
            }
            if t.is_punct('{') {
                let mut end = *file.braces.get(&j).unwrap_or(&j);
                // `else` / `else if …` continuation chains.
                while end + 1 < toks.len() && toks[end + 1].is_ident("else") {
                    let mut k = end + 2;
                    while k < toks.len() && !toks[k].is_punct('{') {
                        k += 1;
                    }
                    match file.braces.get(&k) {
                        Some(&c) => end = c,
                        None => break,
                    }
                }
                return (None, end);
            }
        }
        j += 1;
    }
    (None, body_close)
}

fn record_condvar_wait(
    ws: &Workspace,
    file: &SourceFile,
    f: &FnDef,
    i: usize,
    facts: &mut FnFacts,
) {
    let toks = &file.toks;
    let dot = i - 1;
    if !toks[dot].is_punct('.') || toks[dot - 1].kind != TokKind::Ident {
        return;
    }
    let field = &toks[dot - 1].text;
    let Ok(Some(_)) = resolve_site(ws, file, field, Some(true)) else {
        // Not a declared condvar — `Service::wait`-style polling methods
        // are resolved (or denied) through the call graph instead.
        return;
    };
    let line = toks[i].line;
    // First argument: the guard the wait consumes (and atomically
    // re-acquires) — the one lock legitimately "held" across the wait.
    let consumed = (toks[i + 2].kind == TokKind::Ident).then(|| toks[i + 2].text.clone());
    let in_loop = enclosing_loop(file, f, i);
    if !in_loop {
        facts.diags.push(
            SourceDiagnostic::warning(
                codes::NAKED_CONDVAR_WAIT,
                SrcSpan::new(file.rel_path.clone(), line),
                format!(
                    "condvar wait in `{}` is not inside a loop; condition variables wake \
                     spuriously",
                    f.qual
                ),
            )
            .with_help("re-check the predicate in a `loop`/`while` around the wait"),
        );
    }
    facts.condvar_waits.push((i, consumed, line, in_loop));
}

/// Is token `i` lexically inside a `loop { … }` or `while … { … }`
/// within the function body?
fn enclosing_loop(file: &SourceFile, f: &FnDef, i: usize) -> bool {
    let toks = &file.toks;
    let (body_open, _) = f.body;
    for (&o, &c) in &file.braces {
        if o < c && o > body_open && o < i && c > i {
            // Find the statement-ish header before this `{`: walk back to
            // the previous `;`/`{`/`}` and look at the first token after
            // it.
            let mut k = o;
            while k > body_open {
                let p = &toks[k - 1];
                if p.is_punct(';') || p.is_punct('{') || p.is_punct('}') {
                    break;
                }
                k -= 1;
            }
            if k < o && (toks[k].is_ident("loop") || toks[k].is_ident("while")) {
                return true;
            }
            if toks[o.saturating_sub(1)].is_ident("loop") {
                return true;
            }
        }
    }
    false
}

fn record_escape(file: &SourceFile, f: &FnDef, i: usize, facts: &mut FnFacts) {
    let toks = &file.toks;
    let what = if toks[i].text == "forget" {
        "mem::forget"
    } else if toks[i].text == "leak" {
        "Box::leak"
    } else {
        "ManuallyDrop::new"
    };
    let line = toks[i].line;
    // Argument tokens of the call.
    let mut depth = 0i32;
    let mut j = i + 1;
    let mut args: Vec<&Tok> = Vec::new();
    while j < toks.len() {
        if toks[j].is_punct('(') {
            depth += 1;
        } else if toks[j].is_punct(')') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if depth >= 1 {
            args.push(&toks[j]);
        }
        j += 1;
    }
    let direct_tracked = args.iter().any(|t| {
        t.kind == TokKind::Ident
            && (TRACKED_CTORS.contains(&t.text.as_str())
                || TRACKED_TYPES.contains(&t.text.as_str()))
    });
    let arg_ident = args.first().filter(|t| t.kind == TokKind::Ident).map(|t| t.text.clone());
    let binding_tracked =
        arg_ident.as_deref().is_some_and(|name| binding_is_tracked(file, f, i, name));
    let span = SrcSpan::new(file.rel_path.clone(), line);
    if direct_tracked || binding_tracked {
        facts.diags.push(
            SourceDiagnostic::error(
                codes::RAII_ESCAPE,
                span,
                format!(
                    "`{what}` in `{}` leaks an RAII accounting value; its Drop releases \
                     admission budget or pooled buffers",
                    f.qual
                ),
            )
            .with_help("let the value drop (or return it) on every path instead"),
        );
    } else {
        facts.diags.push(
            SourceDiagnostic::warning(
                codes::RAII_ESCAPE,
                span,
                format!(
                    "`{what}` in `{}` defeats RAII for a value the analyzer cannot prove \
                         inert",
                    f.qual
                ),
            )
            .with_help("if the escape is intentional, add an allowlist entry with justification"),
        );
    }
}

/// Does `name`, bound earlier in the function (by `let` or as a typed
/// parameter), originate from a tracked constructor or carry a tracked
/// type annotation?
fn binding_is_tracked(file: &SourceFile, f: &FnDef, before: usize, name: &str) -> bool {
    let toks = &file.toks;
    let (open, _) = f.body;
    // Parameters: `name : Reservation` in the signature.
    let mut k = f.kw;
    while k + 2 < open {
        if toks[k].is_ident(name) && toks[k + 1].is_punct(':') {
            let ty_end = (k + 2..open)
                .find(|&j| toks[j].is_punct(',') || toks[j].is_punct(')'))
                .unwrap_or(open);
            if toks[k + 2..ty_end]
                .iter()
                .any(|t| t.kind == TokKind::Ident && TRACKED_TYPES.contains(&t.text.as_str()))
            {
                return true;
            }
        }
        k += 1;
    }
    // `let [mut] name [: T] = rhs ;` bindings before the escape.
    let mut k = open;
    while k < before {
        if toks[k].is_ident("let") {
            let mut j = k + 1;
            if j < before && toks[j].is_ident("mut") {
                j += 1;
            }
            if j < before && toks[j].is_ident(name) {
                // Scan to the `;`, checking annotation and rhs.
                let mut depth = 0i32;
                let mut p = j + 1;
                while p < before {
                    let t = &toks[p];
                    if t.is_punct('(') || t.is_punct('[') || t.is_punct('{') {
                        depth += 1;
                    } else if t.is_punct(')') || t.is_punct(']') || t.is_punct('}') {
                        depth -= 1;
                    } else if depth == 0 && t.is_punct(';') {
                        break;
                    } else if t.kind == TokKind::Ident
                        && (TRACKED_CTORS.contains(&t.text.as_str())
                            || TRACKED_TYPES.contains(&t.text.as_str()))
                    {
                        return true;
                    }
                    p += 1;
                }
            }
        }
        k += 1;
    }
    false
}

/// The cross-function analysis results.
#[derive(Debug, Default)]
pub struct Analysis {
    pub diags: Vec<SourceDiagnostic>,
    /// Site-level ordering edges `(from, to, file, line)` — `to` was
    /// acquired (directly or via a resolved callee) while `from` was
    /// held.
    pub edges: Vec<(usize, usize, String, u32)>,
}

/// Run every analysis over the modeled workspace.
pub fn analyze(ws: &Workspace) -> Analysis {
    let mut out = Analysis::default();
    let facts: Vec<FnFacts> = ws.fns.iter().map(|f| fn_facts(ws, f)).collect();
    for f in &facts {
        out.diags.extend(f.diags.iter().cloned());
    }

    // Name → function indices, for the call-graph fixpoint.
    let mut by_name: HashMap<&str, Vec<usize>> = HashMap::new();
    for (i, f) in ws.fns.iter().enumerate() {
        by_name.entry(f.name.as_str()).or_default().push(i);
    }

    // Fixpoint 1: which functions may block (directly or transitively).
    let mut may_block: Vec<bool> =
        facts.iter().map(|f| !f.blocking.is_empty() || !f.condvar_waits.is_empty()).collect();
    // Fixpoint 2: the set of sites a call into the function may acquire.
    let mut acquires: Vec<HashSet<usize>> =
        facts.iter().map(|f| f.acqs.iter().filter_map(|a| a.site).collect()).collect();
    let crate_of = |fn_idx: usize| ws.files[ws.fns[fn_idx].file_idx].crate_name.as_str();
    loop {
        let mut changed = false;
        for (i, f) in facts.iter().enumerate() {
            for (_, callee) in &f.calls {
                for &c in by_name.get(callee.as_str()).map_or(&[] as &[usize], Vec::as_slice) {
                    // A name resolving back to the function under
                    // analysis is the `self.inner.lock().foo()`-inside-
                    // `Wrapper::foo` pattern, not recursion; the
                    // function's own effects are counted directly. And a
                    // callee in a crate the caller does not depend on is
                    // unreachable — reject resolutions against the
                    // dependency direction.
                    if c == i || !ws.may_call(crate_of(i), crate_of(c)) {
                        continue;
                    }
                    if may_block[c] && !may_block[i] {
                        may_block[i] = true;
                        changed = true;
                    }
                    if !acquires[c].is_subset(&acquires[i]) {
                        let add: Vec<usize> =
                            acquires[c].difference(&acquires[i]).copied().collect();
                        acquires[i].extend(add);
                        changed = true;
                    }
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Per guard range: ordering edges and held-across-blocking findings.
    for (fi, f) in facts.iter().enumerate() {
        let fndef = &ws.fns[fi];
        let file = &ws.files[fndef.file_idx];
        for a in &f.acqs {
            let Some(a_site) = a.site else { continue };
            let held = |pos: usize| pos > a.pos && pos <= a.end;
            // Direct nested acquisitions.
            for b in &f.acqs {
                if std::ptr::eq(a, b) || b.site.is_none() {
                    continue;
                }
                if held(b.pos) {
                    out.edges.push((a_site, b.site.unwrap(), file.rel_path.clone(), b.line));
                }
            }
            // Acquisitions via resolved workspace calls.
            for (pos, callee) in &f.calls {
                if !held(*pos) {
                    continue;
                }
                let line = file.toks[*pos].line;
                for &c in by_name.get(callee.as_str()).map_or(&[] as &[usize], Vec::as_slice) {
                    if c == fi || !ws.may_call(crate_of(fi), crate_of(c)) {
                        continue;
                    }
                    for &s in &acquires[c] {
                        out.edges.push((a_site, s, file.rel_path.clone(), line));
                    }
                    if may_block[c] {
                        out.diags.push(
                            SourceDiagnostic::error(
                                codes::HELD_ACROSS_BLOCKING,
                                SrcSpan::new(file.rel_path.clone(), line),
                                format!(
                                    "guard of `{}` is held across a call to `{}`, which may \
                                     block",
                                    ws.sites[a_site].site, ws.fns[c].qual
                                ),
                            )
                            .with_help("release the guard before the call (narrow the scope)"),
                        );
                    }
                }
            }
            // Directly blocking operations under the guard.
            for (pos, what, line) in &f.blocking {
                if held(*pos) {
                    out.diags.push(
                        SourceDiagnostic::error(
                            codes::HELD_ACROSS_BLOCKING,
                            SrcSpan::new(file.rel_path.clone(), *line),
                            format!(
                                "guard of `{}` is held across blocking {what}",
                                ws.sites[a_site].site
                            ),
                        )
                        .with_help("release the guard before blocking (narrow the scope)"),
                    );
                }
            }
            // Condvar waits: the wait legitimately consumes *its own*
            // guard; any other guard held across it is a deadlock shape.
            for (pos, consumed, line, _) in &f.condvar_waits {
                if !held(*pos) {
                    continue;
                }
                let is_own = match (&a.binding, consumed) {
                    (Some(b), Some(c)) => b == c,
                    _ => false,
                };
                if !is_own {
                    out.diags.push(
                        SourceDiagnostic::error(
                            codes::HELD_ACROSS_BLOCKING,
                            SrcSpan::new(file.rel_path.clone(), *line),
                            format!(
                                "guard of `{}` is held across a `Condvar` wait that parks on \
                                 a different lock",
                                ws.sites[a_site].site
                            ),
                        )
                        .with_help(
                            "only the mutex the condvar re-acquires may be held at the wait",
                        ),
                    );
                }
            }
        }
    }

    // Lock-order cycles over the site digraph.
    out.diags.extend(cycle_diagnostics(ws, &out.edges));
    out.diags.extend(annotation_diagnostics(ws));
    out.diags.extend(isa_gating_diagnostics(ws));
    out
}

/// QL0301: strongly-connected components of size ≥ 2 (or self-loops) in
/// the ordering digraph.
fn cycle_diagnostics(
    ws: &Workspace,
    edges: &[(usize, usize, String, u32)],
) -> Vec<SourceDiagnostic> {
    let mut adj: HashMap<usize, HashSet<usize>> = HashMap::new();
    let mut where_edge: HashMap<(usize, usize), (String, u32)> = HashMap::new();
    for (a, b, file, line) in edges {
        adj.entry(*a).or_default().insert(*b);
        where_edge.entry((*a, *b)).or_insert_with(|| (file.clone(), *line));
    }
    let mut out = Vec::new();

    // Self-loops: a site re-acquired while already held.
    for (&a, next) in &adj {
        if next.contains(&a) {
            let (file, line) = &where_edge[&(a, a)];
            out.push(
                SourceDiagnostic::error(
                    codes::LOCK_CYCLE,
                    SrcSpan::new(file.clone(), *line),
                    format!(
                        "`{}` is acquired while a guard of the same site is already held",
                        ws.sites[a].site
                    ),
                )
                .with_help("non-reentrant locks self-deadlock (or are UB) on re-acquisition"),
            );
        }
    }

    // Two-or-more-node cycles: report each unordered pair {A,B} that is
    // connected in both directions through the digraph exactly once, at
    // the lexically first edge. (Pairwise reachability subsumes longer
    // cycles: every cycle contains such a pair.)
    let nodes: Vec<usize> = adj.keys().copied().collect();
    let reach = |from: usize, to: usize| -> bool {
        let mut seen = HashSet::new();
        let mut stack = vec![from];
        while let Some(n) = stack.pop() {
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(&n) {
                if next.contains(&to) {
                    return true;
                }
                stack.extend(next.iter().copied());
            }
        }
        false
    };
    let mut reported: HashSet<(usize, usize)> = HashSet::new();
    for &a in &nodes {
        for &b in &nodes {
            if a >= b {
                continue;
            }
            if reported.contains(&(a, b)) {
                continue;
            }
            if reach(a, b) && reach(b, a) {
                reported.insert((a, b));
                let (file, line) = where_edge
                    .get(&(a, b))
                    .or_else(|| where_edge.get(&(b, a)))
                    .cloned()
                    .unwrap_or_default();
                out.push(
                    SourceDiagnostic::error(
                        codes::LOCK_CYCLE,
                        SrcSpan::new(file, line),
                        format!(
                            "lock-order cycle: `{}` and `{}` are each acquired while the \
                             other is held on some path",
                            ws.sites[a].site, ws.sites[b].site
                        ),
                    )
                    .with_help("pick one global order for the two sites and enforce it"),
                );
            }
        }
    }
    out.sort_by_key(|x| (x.span.file.clone(), x.span.line));
    out
}

/// QL0306 for `lockorder::track("…")` annotation literals that name no
/// modeled site: the runtime tracker and the static graph must agree on
/// identities or the subset check in the serve tests is vacuous.
fn annotation_diagnostics(ws: &Workspace) -> Vec<SourceDiagnostic> {
    let known: HashSet<&str> = ws.sites.iter().map(|s| s.site.as_str()).collect();
    let mut out = Vec::new();
    for file in &ws.files {
        let toks = &file.toks;
        for i in 0..toks.len() {
            if !toks[i].is_ident("track") || file.is_excluded(i) {
                continue;
            }
            if i + 2 >= toks.len() || !toks[i + 1].is_punct('(') {
                continue;
            }
            let lit = &toks[i + 2];
            if lit.kind != TokKind::Lit || !lit.text.starts_with('"') {
                continue;
            }
            let name = lit.text.trim_matches('"');
            if !known.contains(name) {
                out.push(
                    SourceDiagnostic::warning(
                        codes::UNRESOLVED_LOCK_SITE,
                        SrcSpan::new(file.rel_path.clone(), lit.line),
                        format!("lock-site annotation `{name}` names no declared lock site"),
                    )
                    .with_help(
                        "annotation strings must match the analyzer's \
                         `crate::module::Struct.field` identities exactly",
                    ),
                );
            }
        }
    }
    out
}

/// QL0305: x86 intrinsics in files whose `mod` declaration is not
/// `cfg(target_arch = …)`-gated.
fn isa_gating_diagnostics(ws: &Workspace) -> Vec<SourceDiagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        let first_intrinsic = file.toks.iter().enumerate().find(|(i, t)| {
            t.kind == TokKind::Ident
                && (t.text.starts_with("_mm") || t.text.starts_with("__m"))
                && !file.is_excluded(*i)
        });
        let Some((_, tok)) = first_intrinsic else { continue };
        let segment = file.module.rsplit("::").next().unwrap_or(&file.module).to_string();
        let gated = ws
            .mod_cfgs
            .get(&(file.crate_name.clone(), segment))
            .is_some_and(|attrs| attrs.iter().any(|a| a.contains("target_arch")));
        if !gated {
            out.push(
                SourceDiagnostic::error(
                    codes::UNGATED_INTRINSICS,
                    SrcSpan::new(file.rel_path.clone(), tok.line),
                    format!(
                        "`{}` uses x86 intrinsics but its module inclusion is not gated by \
                         `cfg(target_arch = …)`",
                        file.rel_path
                    ),
                )
                .with_help(
                    "declare the module behind #[cfg(all(target_arch = \"x86_64\", …))] and \
                     reach it only through runtime ISA dispatch",
                ),
            );
        }
    }
    out
}
