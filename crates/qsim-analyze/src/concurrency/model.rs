//! Structural model of the workspace source: crates, files, lock-site
//! declarations, functions, and the token-level scaffolding (attribute
//! attachment, brace matching, `#[cfg(test)]` exclusion) the analyses
//! walk.
//!
//! Lock-site identities are strings of the form
//! `crate-name::module::Struct.field` (or `crate-name::module::STATIC`
//! for statics) — the same identity format `qsim_core::lockorder::track`
//! annotations use, which is what lets the serve test suite check
//! observed runtime orderings against this static model.
//!
//! A declaration can opt out of lock tracking with a
//! `// conc-lint: untracked` comment on its own line or the line above
//! (used by the lock-order tracker's internal table, which would
//! otherwise recurse into itself).

use std::collections::{HashMap, HashSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use super::lexer::{lex, Tok, TokKind};

/// Which synchronization primitive a lock site declares.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    Mutex,
    RwLock,
    Condvar,
}

impl LockKind {
    pub fn label(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
            LockKind::Condvar => "Condvar",
        }
    }
}

/// One declared lock site (a struct field or static of lock type).
#[derive(Debug, Clone)]
pub struct LockSite {
    /// Stable identity: `crate::module::Struct.field` or
    /// `crate::module::STATIC`.
    pub site: String,
    /// Field (or static) name, the key acquisitions resolve on.
    pub field: String,
    pub kind: LockKind,
    /// Path relative to the analyzed root.
    pub file: String,
    pub line: u32,
}

/// One function (or method) with a body.
#[derive(Debug, Clone)]
pub struct FnDef {
    /// Base name (`pop_work`).
    pub name: String,
    /// Qualified display name (`qsim-serve::queue::JobQueue::pop_work`).
    pub qual: String,
    /// Index into [`Workspace::files`].
    pub file_idx: usize,
    /// Token index of the `fn` keyword (the signature spans
    /// `kw..body.0`).
    pub kw: usize,
    /// Token indices of the body's `{` and `}` in the file's stream.
    pub body: (usize, usize),
    pub line: u32,
    /// Attribute texts attached to the item (space-joined tokens, e.g.
    /// `cfg ( all ( target_arch = "x86_64" ) )`).
    pub attrs: Vec<String>,
}

/// One parsed source file.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the analyzed root.
    pub rel_path: String,
    pub crate_name: String,
    /// Module path within the crate (`""` for the crate root, `simd` for
    /// `src/simd/mod.rs`, `simd::avx2` for `src/simd/avx2.rs`).
    pub module: String,
    /// Attribute-stripped token stream.
    pub toks: Vec<Tok>,
    /// Token index → attribute texts that immediately preceded it.
    pub attrs_at: HashMap<usize, Vec<String>>,
    /// Line → concatenated comment text on that line.
    pub comments: HashMap<u32, String>,
    /// Open `{` index ↔ close `}` index, both directions.
    pub braces: HashMap<usize, usize>,
    /// Token ranges `[open, close]` of `#[cfg(test)]` / `#[test]` items,
    /// which every analysis skips.
    pub excluded: Vec<(usize, usize)>,
}

impl SourceFile {
    /// Is token index `i` inside an excluded (test-only) range?
    pub fn is_excluded(&self, i: usize) -> bool {
        self.excluded.iter().any(|&(a, b)| i >= a && i <= b)
    }

    /// Comment text at `line`, if any.
    pub fn comment_at(&self, line: u32) -> Option<&str> {
        self.comments.get(&line).map(String::as_str)
    }
}

/// `mod name;` declarations and their attributes, per crate — the table
/// the ISA-gating rule consults to see whether a file's inclusion is
/// `cfg(target_arch = …)`-guarded.
pub type ModCfgs = HashMap<(String, String), Vec<String>>;

/// The whole analyzed tree.
#[derive(Debug)]
pub struct Workspace {
    pub files: Vec<SourceFile>,
    pub sites: Vec<LockSite>,
    pub fns: Vec<FnDef>,
    pub mod_cfgs: ModCfgs,
    pub crates: Vec<String>,
    /// Transitive workspace-internal dependency closure per crate
    /// (including dev-dependencies; a crate is in its own closure). Call
    /// resolution uses this to reject edges against the dependency
    /// direction — `gpu-model` can never call into `qsim-serve`.
    pub deps: HashMap<String, HashSet<String>>,
}

impl Workspace {
    /// May code in `caller` (a crate name) call into `callee`?
    pub fn may_call(&self, caller: &str, callee: &str) -> bool {
        caller == callee || self.deps.get(caller).is_some_and(|d| d.contains(callee))
    }
}

/// Load and model every workspace crate under `root` (a directory whose
/// `Cargo.toml` is either a `[workspace]` manifest — members are scanned
/// from `crates/*` plus the root package — or a single `[package]`).
/// Vendored stand-ins under `third_party/` are deliberately out of
/// scope: the lints encode *this* project's concurrency conventions.
pub fn load(root: &Path) -> io::Result<Workspace> {
    let manifest = fs::read_to_string(root.join("Cargo.toml"))?;
    let mut crate_dirs: Vec<PathBuf> = Vec::new();
    if manifest.contains("[workspace]") {
        let crates_dir = root.join("crates");
        if crates_dir.is_dir() {
            let mut entries: Vec<PathBuf> = fs::read_dir(&crates_dir)?
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.join("Cargo.toml").is_file())
                .collect();
            entries.sort();
            crate_dirs.extend(entries);
        }
        if manifest.contains("[package]") {
            crate_dirs.push(root.to_path_buf());
        }
    } else {
        crate_dirs.push(root.to_path_buf());
    }

    let mut ws = Workspace {
        files: Vec::new(),
        sites: Vec::new(),
        fns: Vec::new(),
        mod_cfgs: HashMap::new(),
        crates: Vec::new(),
        deps: HashMap::new(),
    };
    let mut manifests: Vec<(PathBuf, String, String)> = Vec::new();
    for dir in crate_dirs {
        let manifest = fs::read_to_string(dir.join("Cargo.toml"))?;
        let crate_name = package_name(&manifest).unwrap_or_else(|| {
            dir.file_name().map(|n| n.to_string_lossy().into_owned()).unwrap_or_default()
        });
        ws.crates.push(crate_name.clone());
        manifests.push((dir, crate_name, manifest));
    }
    // Direct workspace-internal deps, then the transitive closure.
    for (_, name, manifest) in &manifests {
        ws.deps.insert(name.clone(), direct_deps(manifest, &ws.crates));
    }
    loop {
        let mut changed = false;
        for name in ws.crates.clone() {
            let current = ws.deps.get(&name).cloned().unwrap_or_default();
            let mut grown = current.clone();
            for d in &current {
                if let Some(trans) = ws.deps.get(d) {
                    grown.extend(trans.iter().cloned());
                }
            }
            if grown.len() != current.len() {
                ws.deps.insert(name, grown);
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    for (dir, crate_name, _) in manifests {
        let src = dir.join("src");
        if !src.is_dir() {
            continue;
        }
        let mut rs_files = Vec::new();
        collect_rs(&src, &mut rs_files)?;
        rs_files.sort();
        for path in rs_files {
            let text = fs::read_to_string(&path)?;
            let rel_path =
                path.strip_prefix(root).unwrap_or(&path).to_string_lossy().replace('\\', "/");
            let module = module_path(&src, &path);
            let file = parse_file(rel_path, crate_name.clone(), module, &text);
            ws.files.push(file);
        }
    }
    for idx in 0..ws.files.len() {
        extract_items(&mut ws, idx);
    }
    Ok(ws)
}

/// First `name = "…"` after `[package]` in a manifest.
fn package_name(manifest: &str) -> Option<String> {
    let pkg = manifest.split("[package]").nth(1)?;
    for line in pkg.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("name") {
            let rest = rest.trim_start();
            if let Some(rest) = rest.strip_prefix('=') {
                return Some(rest.trim().trim_matches('"').to_string());
            }
        }
        if line.starts_with('[') {
            break;
        }
    }
    None
}

/// Workspace-internal crates named in any `[dependencies]`-family
/// section of `manifest` (dev- and build-deps included: tests call
/// across those edges too).
fn direct_deps(manifest: &str, crates: &[String]) -> HashSet<String> {
    let mut out = HashSet::new();
    let mut in_deps = false;
    for line in manifest.lines() {
        let line = line.trim();
        if line.starts_with('[') {
            in_deps = line.contains("dependencies");
            continue;
        }
        if !in_deps || line.is_empty() || line.starts_with('#') {
            continue;
        }
        let key = line.split(['=', '.', ' ']).next().unwrap_or("").trim().trim_matches('"');
        if crates.iter().any(|c| c == key) {
            out.insert(key.to_string());
        }
    }
    out
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            collect_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

fn module_path(src_root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(src_root).unwrap_or(file);
    let mut parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    if let Some(last) = parts.last_mut() {
        *last = last.trim_end_matches(".rs").to_string();
    }
    match parts.last().map(String::as_str) {
        Some("lib") | Some("main") | Some("mod") => {
            parts.pop();
        }
        _ => {}
    }
    parts.join("::")
}

/// Lex, strip attributes into a side table, compute brace matching and
/// test-exclusion ranges.
fn parse_file(rel_path: String, crate_name: String, module: String, text: &str) -> SourceFile {
    let lexed = lex(text);
    let mut toks: Vec<Tok> = Vec::with_capacity(lexed.toks.len());
    let mut attrs_at: HashMap<usize, Vec<String>> = HashMap::new();
    let mut pending: Vec<String> = Vec::new();
    let raw = lexed.toks;
    let mut i = 0usize;
    while i < raw.len() {
        if raw[i].is_punct('#') {
            // `#[…]` or `#![…]` — capture the bracket group as text.
            let mut j = i + 1;
            if j < raw.len() && raw[j].is_punct('!') {
                j += 1;
            }
            if j < raw.len() && raw[j].is_punct('[') {
                let mut depth = 0usize;
                let mut body = Vec::new();
                let mut k = j;
                while k < raw.len() {
                    if raw[k].is_punct('[') {
                        depth += 1;
                    } else if raw[k].is_punct(']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    } else if depth >= 1 {
                        body.push(raw[k].text.clone());
                    }
                    k += 1;
                }
                // Inner attrs (`#![…]`) describe the file; item attrs the
                // next item. Both land in the pending buffer — inner
                // attrs simply never match an item check.
                pending.push(body.join(" "));
                i = k + 1;
                continue;
            }
        }
        if !pending.is_empty() {
            attrs_at.entry(toks.len()).or_default().append(&mut pending);
        }
        toks.push(raw[i].clone());
        i += 1;
    }

    let mut comments: HashMap<u32, String> = HashMap::new();
    for (line, text) in lexed.comments {
        let slot = comments.entry(line).or_default();
        if !slot.is_empty() {
            slot.push(' ');
        }
        slot.push_str(&text);
    }

    let mut braces = HashMap::new();
    let mut stack = Vec::new();
    for (idx, t) in toks.iter().enumerate() {
        if t.is_punct('{') {
            stack.push(idx);
        } else if t.is_punct('}') {
            if let Some(open) = stack.pop() {
                braces.insert(open, idx);
                braces.insert(idx, open);
            }
        }
    }

    let mut file = SourceFile {
        rel_path,
        crate_name,
        module,
        toks,
        attrs_at,
        comments,
        braces,
        excluded: Vec::new(),
    };
    file.excluded = excluded_ranges(&file);
    file
}

fn is_test_attr(attr: &str) -> bool {
    if attr == "test" {
        return true;
    }
    // `cfg(test)` and `cfg(all(test, …))` gate test-only code;
    // `cfg(not(test))` gates *production* code and must not exclude it.
    attr.starts_with("cfg") && attr.contains(" test ") && !attr.contains("not ( test")
}

/// Token ranges of `#[cfg(test)]`/`#[test]` items: from the attributed
/// token to the matching `}` of the item's body (or its terminating
/// `;`).
fn excluded_ranges(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut out = Vec::new();
    for (&idx, attrs) in &file.attrs_at {
        if !attrs.iter().any(|a| is_test_attr(a)) {
            continue;
        }
        // Find the item's extent: the first `{` at paren depth 0 opens
        // the body; a `;` at depth 0 before any `{` ends a bodyless item.
        let mut paren = 0i32;
        let mut j = idx;
        let end = loop {
            if j >= file.toks.len() {
                break file.toks.len().saturating_sub(1);
            }
            let t = &file.toks[j];
            if t.is_punct('(') || t.is_punct('[') {
                paren += 1;
            } else if t.is_punct(')') || t.is_punct(']') {
                paren -= 1;
            } else if paren == 0 && t.is_punct('{') {
                break *file.braces.get(&j).unwrap_or(&j);
            } else if paren == 0 && t.is_punct(';') {
                break j;
            }
            j += 1;
        };
        out.push((idx, end));
    }
    out.sort_unstable();
    out
}

/// Walk one file's tokens and register lock sites, functions, and
/// `mod … ;` declarations on the workspace.
fn extract_items(ws: &mut Workspace, file_idx: usize) {
    let file = &ws.files[file_idx];
    let toks = &file.toks;
    let mut sites = Vec::new();
    let mut fns = Vec::new();
    let mut mods = Vec::new();

    // Innermost-wins impl context: (type name, open, close).
    let impls = impl_ranges(file);

    let mut i = 0usize;
    while i < toks.len() {
        if file.is_excluded(i) {
            i += 1;
            continue;
        }
        let t = &toks[i];
        if t.is_ident("struct") && i + 1 < toks.len() && toks[i + 1].kind == TokKind::Ident {
            let name = toks[i + 1].text.clone();
            if let Some((open, close)) = struct_body(file, i + 2) {
                extract_struct_fields(file, &name, open, close, &mut sites);
                i = open + 1;
                continue;
            }
        } else if t.is_ident("static") {
            let mut j = i + 1;
            if j < toks.len() && toks[j].is_ident("mut") {
                j += 1;
            }
            if j + 1 < toks.len() && toks[j].kind == TokKind::Ident && toks[j + 1].is_punct(':') {
                let name = toks[j].text.clone();
                let line = toks[j].line;
                let ty_end = scan_type(toks, j + 2, &['=', ';']);
                if let Some(kind) = lock_kind_of(&toks[j + 2..ty_end]) {
                    if !untracked_marker(file, line) {
                        sites.push(LockSite {
                            site: item_identity(file, &name, None),
                            field: name,
                            kind,
                            file: file.rel_path.clone(),
                            line,
                        });
                    }
                }
                i = ty_end;
                continue;
            }
        } else if t.is_ident("mod")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && i + 2 < toks.len()
            && toks[i + 2].is_punct(';')
        {
            mods.push((toks[i + 1].text.clone(), item_attrs(file, i)));
            i += 3;
            continue;
        } else if t.is_ident("fn")
            && i + 1 < toks.len()
            && toks[i + 1].kind == TokKind::Ident
            && !prev_is_punct(toks, i, '(')
        {
            if let Some((open, close)) = fn_body(file, i) {
                let name = toks[i + 1].text.clone();
                let owner = impls
                    .iter()
                    .filter(|(_, a, b)| i > *a && i < *b)
                    .min_by_key(|(_, a, b)| b - a)
                    .map(|(n, _, _)| n.clone());
                let qual = match &owner {
                    Some(ty) => item_identity(file, &format!("{ty}::{name}"), None),
                    None => item_identity(file, &name, None),
                };
                fns.push(FnDef {
                    name,
                    qual,
                    file_idx,
                    kw: i,
                    body: (open, close),
                    line: toks[i].line,
                    attrs: item_attrs(file, i),
                });
                // Keep walking *inside* the body too: nested fns and
                // closures are rare but struct defs inside fns are not.
                i += 2;
                continue;
            }
        }
        i += 1;
    }

    let crate_name = file.crate_name.clone();
    for (m, attrs) in mods {
        ws.mod_cfgs.insert((crate_name.clone(), m), attrs);
    }
    ws.sites.extend(sites);
    ws.fns.extend(fns);
}

/// `crate::module::name` (field appended by the caller when `Some`).
fn item_identity(file: &SourceFile, name: &str, field: Option<&str>) -> String {
    let base = if file.module.is_empty() {
        format!("{}::{}", file.crate_name, name)
    } else {
        format!("{}::{}::{}", file.crate_name, file.module, name)
    };
    match field {
        Some(f) => format!("{base}.{f}"),
        None => base,
    }
}

fn prev_is_punct(toks: &[Tok], i: usize, c: char) -> bool {
    i > 0 && toks[i - 1].is_punct(c)
}

/// Attributes attached to the item whose `fn`/`struct` keyword sits at
/// `i`, looking back across `pub`, `pub(crate)`, `unsafe`, `const`,
/// `async`, `extern "C"` modifier runs.
fn item_attrs(file: &SourceFile, i: usize) -> Vec<String> {
    let toks = &file.toks;
    let mut m = i;
    loop {
        if m == 0 {
            break;
        }
        let p = &toks[m - 1];
        if p.kind == TokKind::Ident
            && matches!(
                p.text.as_str(),
                "pub" | "unsafe" | "const" | "async" | "extern" | "default"
            )
        {
            m -= 1;
        } else if p.is_punct(')') {
            // `pub(crate)` — scan back to the `(` and the `pub` before it.
            let mut k = m - 1;
            let mut depth = 0i32;
            loop {
                if toks[k].is_punct(')') {
                    depth += 1;
                } else if toks[k].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                if k == 0 {
                    break;
                }
                k -= 1;
            }
            if k > 0 && toks[k - 1].is_ident("pub") {
                m = k - 1;
            } else {
                break;
            }
        } else if p.kind == TokKind::Lit && p.text.starts_with('"') {
            // The ABI string of `extern "C"`.
            m -= 1;
        } else {
            break;
        }
    }
    file.attrs_at.get(&m).cloned().unwrap_or_default()
}

/// Body braces of a `struct` whose name ends just before `i` (skipping
/// generics and where clauses); `None` for tuple/unit structs.
fn struct_body(file: &SourceFile, mut i: usize) -> Option<(usize, usize)> {
    let toks = &file.toks;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_punct(toks, i, '-') {
            angle -= 1;
        } else if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if t.is_punct('{') {
                return file.braces.get(&i).map(|&c| (i, c));
            }
            if t.is_punct(';') {
                return None;
            }
        }
        i += 1;
    }
    None
}

/// Body braces of the `fn` whose keyword sits at `i`; `None` for
/// bodyless trait-method declarations.
fn fn_body(file: &SourceFile, i: usize) -> Option<(usize, usize)> {
    let toks = &file.toks;
    let mut j = i + 2;
    let mut angle = 0i32;
    let mut paren = 0i32;
    while j < toks.len() {
        let t = &toks[j];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_punct(toks, j, '-') {
            angle -= 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if angle <= 0 && paren == 0 {
            if t.is_punct('{') {
                return file.braces.get(&j).map(|&c| (j, c));
            }
            if t.is_punct(';') {
                return None;
            }
        }
        j += 1;
    }
    None
}

/// `impl` blocks as (self-type name, body open, body close).
fn impl_ranges(file: &SourceFile) -> Vec<(String, usize, usize)> {
    let toks = &file.toks;
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        if toks[i].is_ident("impl") {
            let mut j = i + 1;
            let mut angle = 0i32;
            let mut header: Vec<&Tok> = Vec::new();
            while j < toks.len() {
                let t = &toks[j];
                if t.is_punct('<') {
                    angle += 1;
                } else if t.is_punct('>') && !prev_is_punct(toks, j, '-') {
                    angle -= 1;
                } else if angle == 0 && t.is_punct('{') {
                    break;
                } else if angle == 0 && t.is_punct(';') {
                    // `impl Trait for Type;` (never valid, but bail).
                    break;
                }
                if angle == 0 {
                    header.push(t);
                }
                j += 1;
            }
            if j < toks.len() && toks[j].is_punct('{') {
                let close = *file.braces.get(&j).unwrap_or(&j);
                let name = impl_self_type(&header);
                if let Some(name) = name {
                    out.push((name, j, close));
                }
            }
            i = j + 1;
            continue;
        }
        i += 1;
    }
    out
}

/// The self type of an impl header: the last segment of the type path
/// after `for` when present (trait impl), else of the leading path
/// (inherent impl) — `impl fmt::Display for queue::QueuedJob` yields
/// `QueuedJob`.
fn impl_self_type(header: &[&Tok]) -> Option<String> {
    let for_pos = header.iter().position(|t| t.is_ident("for"));
    let tail: &[&Tok] = match for_pos {
        Some(p) => &header[p + 1..],
        None => header,
    };
    let mut last: Option<String> = None;
    for t in tail {
        if t.kind == TokKind::Ident {
            if matches!(t.text.as_str(), "dyn" | "mut" | "const") {
                continue;
            }
            last = Some(t.text.clone());
        } else if t.is_punct(':') || t.is_punct('&') || t.kind == TokKind::Lifetime {
            continue;
        } else {
            break;
        }
    }
    last
}

/// Named fields of a struct body: records any whose type mentions a lock
/// primitive.
fn extract_struct_fields(
    file: &SourceFile,
    struct_name: &str,
    open: usize,
    close: usize,
    out: &mut Vec<LockSite>,
) {
    let toks = &file.toks;
    let mut i = open + 1;
    while i < close {
        // Skip visibility modifiers.
        if toks[i].is_ident("pub") {
            i += 1;
            if i < close && toks[i].is_punct('(') {
                let mut depth = 0i32;
                while i < close {
                    if toks[i].is_punct('(') {
                        depth += 1;
                    } else if toks[i].is_punct(')') {
                        depth -= 1;
                        if depth == 0 {
                            i += 1;
                            break;
                        }
                    }
                    i += 1;
                }
            }
            continue;
        }
        if toks[i].kind == TokKind::Ident && i + 1 < close && toks[i + 1].is_punct(':') {
            let field = toks[i].text.clone();
            let line = toks[i].line;
            let ty_end = scan_type(toks, i + 2, &[',']).min(close);
            if let Some(kind) = lock_kind_of(&toks[i + 2..ty_end]) {
                if !untracked_marker(file, line) {
                    out.push(LockSite {
                        site: item_identity(file, struct_name, Some(&field)),
                        field,
                        kind,
                        file: file.rel_path.clone(),
                        line,
                    });
                }
            }
            i = ty_end + 1;
            continue;
        }
        i += 1;
    }
}

/// End index of a type starting at `i`: first terminator at zero
/// paren/bracket/angle nesting.
fn scan_type(toks: &[Tok], mut i: usize, terminators: &[char]) -> usize {
    let mut angle = 0i32;
    let mut paren = 0i32;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('<') {
            angle += 1;
        } else if t.is_punct('>') && !prev_is_punct(toks, i, '-') {
            angle -= 1;
        } else if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
        } else if angle == 0 && paren == 0 {
            if terminators.iter().any(|&c| t.is_punct(c)) {
                return i;
            }
            if t.is_punct('}') {
                return i;
            }
        }
        i += 1;
    }
    i
}

fn lock_kind_of(ty: &[Tok]) -> Option<LockKind> {
    for t in ty {
        if t.kind == TokKind::Ident {
            match t.text.as_str() {
                "Condvar" => return Some(LockKind::Condvar),
                "Mutex" => return Some(LockKind::Mutex),
                "RwLock" => return Some(LockKind::RwLock),
                _ => {}
            }
        }
    }
    None
}

/// `// conc-lint: untracked` on the declaration line or the line above.
fn untracked_marker(file: &SourceFile, line: u32) -> bool {
    (line.saturating_sub(1)..=line)
        .any(|l| file.comment_at(l).is_some_and(|c| c.contains("conc-lint: untracked")))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file_of(src: &str) -> SourceFile {
        parse_file("test.rs".into(), "test-crate".into(), "m".into(), src)
    }

    fn sites_of(src: &str) -> Vec<LockSite> {
        let file = file_of(src);
        let mut ws = Workspace {
            files: vec![file],
            sites: Vec::new(),
            fns: Vec::new(),
            mod_cfgs: HashMap::new(),
            crates: vec!["test-crate".into()],
            deps: HashMap::new(),
        };
        extract_items(&mut ws, 0);
        ws.sites
    }

    #[test]
    fn lock_fields_get_identities() {
        let src = r#"
            pub struct Q {
                pub inner: Mutex<Inner>,
                available: Condvar,
                plans: RwLock<HashMap<K, (Arc<P>, u64)>>,
                depth: usize,
            }
        "#;
        let sites = sites_of(src);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[0].site, "test-crate::m::Q.inner");
        assert_eq!(sites[0].kind, LockKind::Mutex);
        assert_eq!(sites[1].kind, LockKind::Condvar);
        assert_eq!(sites[2].site, "test-crate::m::Q.plans");
        assert_eq!(sites[2].kind, LockKind::RwLock);
    }

    #[test]
    fn untracked_marker_excludes_a_site() {
        let src = "
            struct T {
                // conc-lint: untracked — internal
                table: Mutex<u32>,
                real: Mutex<u32>,
            }
        ";
        let sites = sites_of(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].field, "real");
    }

    #[test]
    fn statics_are_sites_too() {
        let src = "static GLOBAL: OnceLock<Mutex<Vec<u8>>> = OnceLock::new();";
        let sites = sites_of(src);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].site, "test-crate::m::GLOBAL");
    }

    #[test]
    fn cfg_test_mods_are_excluded() {
        let src = r#"
            struct Real { m: Mutex<u32> }
            #[cfg(test)]
            mod tests {
                struct Fake { m: Mutex<u32> }
                fn helper() {}
            }
        "#;
        let file = file_of(src);
        let mut ws = Workspace {
            files: vec![file],
            sites: Vec::new(),
            fns: Vec::new(),
            mod_cfgs: HashMap::new(),
            crates: vec!["test-crate".into()],
            deps: HashMap::new(),
        };
        extract_items(&mut ws, 0);
        assert_eq!(ws.sites.len(), 1);
        assert!(ws.fns.is_empty(), "test-mod fns must be skipped: {:?}", ws.fns);
    }

    #[test]
    fn fns_get_impl_context_and_attrs() {
        let src = r#"
            impl JobQueue {
                #[inline]
                pub fn pop(&self) -> Option<Job> { None }
            }
            fn free_standing() {}
            trait T { fn decl_only(&self); }
        "#;
        let file = file_of(src);
        let mut ws = Workspace {
            files: vec![file],
            sites: Vec::new(),
            fns: Vec::new(),
            mod_cfgs: HashMap::new(),
            crates: vec!["test-crate".into()],
            deps: HashMap::new(),
        };
        extract_items(&mut ws, 0);
        let names: Vec<&str> = ws.fns.iter().map(|f| f.qual.as_str()).collect();
        assert!(names.contains(&"test-crate::m::JobQueue::pop"), "{names:?}");
        assert!(names.contains(&"test-crate::m::free_standing"), "{names:?}");
        assert!(!names.iter().any(|n| n.contains("decl_only")), "{names:?}");
        let pop = ws.fns.iter().find(|f| f.name == "pop").unwrap();
        assert_eq!(pop.attrs, vec!["inline".to_string()]);
    }

    #[test]
    fn mod_decl_cfgs_are_recorded() {
        let src = r#"
            #[cfg ( all ( target_arch = "x86_64" , not ( miri ) ) )]
            mod avx2;
            mod portable;
        "#;
        let file = file_of(src);
        let mut ws = Workspace {
            files: vec![file],
            sites: Vec::new(),
            fns: Vec::new(),
            mod_cfgs: HashMap::new(),
            crates: vec!["test-crate".into()],
            deps: HashMap::new(),
        };
        extract_items(&mut ws, 0);
        let avx = ws.mod_cfgs.get(&("test-crate".into(), "avx2".into())).unwrap();
        assert!(avx.iter().any(|a| a.contains("target_arch")));
        let portable = ws.mod_cfgs.get(&("test-crate".into(), "portable".into())).unwrap();
        assert!(portable.is_empty());
    }
}
