//! # qsim-analyze
//!
//! Compiler-style static analysis for circuits and fused execution plans.
//!
//! The engine mirrors how a compiler front-end is organized: independent
//! *lint rules* walk a [`Circuit`] or a [`FusedCircuit`] and report typed
//! [`Diagnostic`]s (stable code, severity, span, message, optional help)
//! into an [`AnalysisReport`]. Rules never abort analysis — every rule runs
//! and every finding is collected, so one `analyze` pass shows the whole
//! picture instead of the first failure.
//!
//! Two rule families exist:
//!
//! * [`CircuitRule`]s lint the raw gate list: structural invariants
//!   (delegated to [`Circuit::validate`], `QC00xx` codes), matrix unitarity
//!   in both working precisions, dead/identity gates, gates acting on
//!   already-measured qubits (`QA01xx` codes);
//! * [`PlanRule`]s lint the fuser's output: well-formed qubit sets, matrix
//!   dimensions, fusion-budget legality, norm preservation of the fused
//!   products, measurement ordering, source-gate accounting, sweep-barrier
//!   accounting against [`qsim_core::sweep`], and (for small registers) a
//!   probe-state equivalence check of plan vs. source (`QP02xx` codes).
//!
//! Registries come in two sizes: [`Analyzer::new`] holds every rule and
//! backs the `qsim_base analyze` subcommand; [`Analyzer::pre_run`] holds
//! the cheap plan rules only and is what `qsim-backends` executes before
//! allocating state — a non-unitary or malformed plan is rejected before
//! any memory is touched.
//!
//! Diagnostic code ranges are documented in [`qsim_core::diag`]; the codes
//! themselves are in [`codes`]. Codes are stable: tests and `--json`
//! consumers match on them.

use qsim_circuit::circuit::Circuit;
use qsim_core::diag::Diagnostic;
use qsim_core::sweep::SweepConfig;
use qsim_fusion::FusedCircuit;

pub mod concurrency;
pub mod registry;
pub mod report;
pub mod rules;

pub use report::AnalysisReport;

/// Stable diagnostic codes emitted by this crate (`QA01xx` for raw-circuit
/// semantic lints, `QP02xx` for fused-plan lints). Structural `QC00xx`
/// codes live in [`qsim_circuit::circuit::codes`].
pub mod codes {
    /// A gate matrix is not unitary within [`crate::UNITARY_TOL_F64`].
    pub const NON_UNITARY_GATE: &str = "QA0101";
    /// A gate matrix is unitary in `f64` but drifts past
    /// [`crate::UNITARY_TOL_F32`] when cast to `f32`.
    pub const UNITARITY_F32_LOSS: &str = "QA0102";
    /// A gate acts as the identity (explicit `id` or zero-angle rotation).
    pub const IDENTITY_GATE: &str = "QA0103";
    /// A unitary gate acts on a qubit after that qubit was measured.
    pub const GATE_AFTER_MEASUREMENT: &str = "QA0104";
    /// The circuit contains no operations.
    pub const EMPTY_CIRCUIT: &str = "QA0105";

    /// A fused gate's qubit list is empty, unsorted, duplicated, or out of
    /// range.
    pub const PLAN_MALFORMED_QUBITS: &str = "QP0201";
    /// A fused gate's matrix dimension disagrees with its qubit count.
    pub const PLAN_MATRIX_DIM_MISMATCH: &str = "QP0202";
    /// A fused gate is wider than the kernels support
    /// ([`qsim_core::kernels::MAX_GATE_QUBITS`]).
    pub const PLAN_WIDTH_EXCEEDS_KERNEL: &str = "QP0203";
    /// The fuser merged gates into a product wider than the plan's own
    /// `max_fused_qubits` budget.
    pub const PLAN_FUSION_BUDGET_EXCEEDED: &str = "QP0204";
    /// A fused product is not unitary within [`crate::PLAN_UNITARY_TOL_F64`]
    /// — fusion destroyed norm preservation.
    pub const PLAN_NON_UNITARY: &str = "QP0205";
    /// A fused product is unitary in `f64` but drifts past
    /// [`crate::UNITARY_TOL_F32`] in `f32`.
    pub const PLAN_UNITARITY_F32_LOSS: &str = "QP0206";
    /// A fused gate's `(first, last)` source-time range is inverted.
    pub const PLAN_TIME_RANGE_INVERTED: &str = "QP0207";
    /// Measurement barriers appear out of time order in the plan.
    pub const PLAN_MEASUREMENT_ORDER: &str = "QP0208";
    /// The plan disagrees with its source circuit (qubit count, folded
    /// gate accounting, or measurement barriers).
    pub const PLAN_SOURCE_MISMATCH: &str = "QP0209";
    /// Probe states evolved through the plan diverge from the source
    /// circuit — the plan is not equivalent to what it claims to compile.
    pub const PLAN_EQUIVALENCE_DIVERGED: &str = "QP0210";
    /// The probe-state equivalence check was skipped (register too large).
    pub const PLAN_EQUIVALENCE_SKIPPED: &str = "QP0211";
    /// A fused product collapsed to the identity: the gates cancelled,
    /// and the plan spends a full pass over the state doing nothing.
    pub const PLAN_IDENTITY_PASS: &str = "QP0214";
    /// Sweep pass accounting is internally inconsistent with the
    /// block-locality predicate.
    pub const PLAN_SWEEP_ACCOUNTING: &str = "QP0212";
    /// Most passes are sweep barriers — the cache-blocked sweep cannot
    /// help this plan (performance hint, never an error).
    pub const PLAN_SWEEP_BARRIER_HEAVY: &str = "QP0213";
}

/// Unitarity tolerance for `f64` gate matrices (`‖U†U − I‖∞`).
pub const UNITARY_TOL_F64: f64 = 1e-9;
/// Unitarity tolerance after casting to `f32` — loose enough for rounding,
/// tight enough to catch real norm loss.
pub const UNITARY_TOL_F32: f64 = 1e-4;
/// Unitarity tolerance for fused products in `f64`: matrix products of
/// long gate chains accumulate rounding, so this is looser than
/// [`UNITARY_TOL_F64`].
pub const PLAN_UNITARY_TOL_F64: f64 = 1e-8;
/// Largest register the probe-state equivalence rule simulates (the check
/// is `O(gates · 2^n)`; beyond this it reports [`codes::PLAN_EQUIVALENCE_SKIPPED`]).
pub const EQUIVALENCE_MAX_QUBITS: usize = 10;
/// Probe-state divergence tolerance (max absolute amplitude difference).
pub const EQUIVALENCE_TOL: f64 = 1e-9;

/// Context handed to every [`CircuitRule`].
#[derive(Debug, Clone, Copy)]
pub struct CircuitCtx<'a> {
    /// The circuit under analysis.
    pub circuit: &'a Circuit,
}

/// Context handed to every [`PlanRule`].
#[derive(Debug, Clone, Copy)]
pub struct PlanCtx<'a> {
    /// The fused plan under analysis.
    pub plan: &'a FusedCircuit,
    /// The source circuit the plan was fused from, when the caller has it
    /// (the backend pre-run gate does not). Source-accounting and
    /// equivalence rules no-op without it.
    pub source: Option<&'a Circuit>,
    /// Sweep configuration the plan would execute under.
    pub sweep: SweepConfig,
}

/// A lint over a raw [`Circuit`]. Rules append findings and never fail.
pub trait CircuitRule {
    /// Stable rule name (kebab-case, shown in verbose listings).
    fn name(&self) -> &'static str;
    /// Run the rule, appending findings to `out`.
    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// A lint over a [`FusedCircuit`] execution plan.
pub trait PlanRule {
    /// Stable rule name (kebab-case, shown in verbose listings).
    fn name(&self) -> &'static str;
    /// Run the rule, appending findings to `out`.
    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>);
}

/// A rule registry: the unit of "which lints run".
pub struct Analyzer {
    circuit_rules: Vec<Box<dyn CircuitRule>>,
    plan_rules: Vec<Box<dyn PlanRule>>,
}

impl Default for Analyzer {
    fn default() -> Self {
        Analyzer::new()
    }
}

impl Analyzer {
    /// The full registry: every circuit rule and every plan rule,
    /// including the `O(2^n)`-bounded probe-equivalence check. This is
    /// what `qsim_base analyze` runs.
    pub fn new() -> Analyzer {
        let mut a = Analyzer::pre_run();
        a.circuit_rules = vec![
            Box::new(rules::Structure),
            Box::new(rules::Unitarity),
            Box::new(rules::IdentityGate),
            Box::new(rules::GateAfterMeasurement),
            Box::new(rules::EmptyCircuit),
        ];
        a.plan_rules.push(Box::new(rules::PlanEquivalence));
        a
    }

    /// The cheap registry the backends run before allocating state: plan
    /// rules only (the backend never sees the raw circuit), excluding the
    /// probe-equivalence simulation. Every rule here is at most
    /// `O(gates · 64³)` — independent of `2^n`.
    pub fn pre_run() -> Analyzer {
        Analyzer {
            circuit_rules: Vec::new(),
            plan_rules: vec![
                Box::new(rules::PlanShape),
                Box::new(rules::PlanUnitarity),
                Box::new(rules::PlanMeasurementOrder),
                Box::new(rules::PlanSourceAccounting),
                Box::new(rules::PlanSweep),
            ],
        }
    }

    /// Registered rule names, circuit rules first (for `--verbose`
    /// listings and tests).
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.circuit_rules
            .iter()
            .map(|r| r.name())
            .chain(self.plan_rules.iter().map(|r| r.name()))
            .collect()
    }

    /// Add a custom circuit rule (builder style).
    pub fn with_circuit_rule(mut self, rule: Box<dyn CircuitRule>) -> Analyzer {
        self.circuit_rules.push(rule);
        self
    }

    /// Add a custom plan rule (builder style).
    pub fn with_plan_rule(mut self, rule: Box<dyn PlanRule>) -> Analyzer {
        self.plan_rules.push(rule);
        self
    }

    /// Run every registered circuit rule over `circuit`.
    pub fn analyze_circuit(&self, circuit: &Circuit) -> AnalysisReport {
        let ctx = CircuitCtx { circuit };
        let mut out = Vec::new();
        for rule in &self.circuit_rules {
            rule.check(&ctx, &mut out);
        }
        AnalysisReport::from_diagnostics(out)
    }

    /// Run every registered plan rule over `plan`. Pass the source circuit
    /// when available so accounting/equivalence rules can cross-check.
    pub fn analyze_plan(
        &self,
        plan: &FusedCircuit,
        source: Option<&Circuit>,
        sweep: SweepConfig,
    ) -> AnalysisReport {
        let ctx = PlanCtx { plan, source, sweep };
        let mut out = Vec::new();
        for rule in &self.plan_rules {
            rule.check(&ctx, &mut out);
        }
        AnalysisReport::from_diagnostics(out)
    }

    /// The end-to-end pipeline behind `qsim_base analyze`: lint the raw
    /// circuit, and — unless the circuit itself has errors (fusing an
    /// invalid circuit is undefined) — fuse it with `max_fused_qubits` and
    /// lint the resulting plan against the source. Returns one combined
    /// report.
    pub fn analyze(
        &self,
        circuit: &Circuit,
        max_fused_qubits: usize,
        sweep: SweepConfig,
    ) -> AnalysisReport {
        let mut report = self.analyze_circuit(circuit);
        if !report.has_errors() {
            let plan = qsim_fusion::fuse(circuit, max_fused_qubits);
            report.extend(self.analyze_plan(&plan, Some(circuit), sweep));
        }
        report
    }

    /// Like [`Analyzer::analyze`], but over a plan the caller already
    /// fused — e.g. one produced by the cost-model planner
    /// ([`qsim_fusion::plan`]) rather than the default greedy fuser.
    /// Lints the raw circuit, then — unless the circuit itself has errors
    /// — the given plan against it. Returns one combined report.
    pub fn analyze_fused(
        &self,
        circuit: &Circuit,
        plan: &FusedCircuit,
        sweep: SweepConfig,
    ) -> AnalysisReport {
        let mut report = self.analyze_circuit(circuit);
        if !report.has_errors() {
            report.extend(self.analyze_plan(plan, Some(circuit), sweep));
        }
        report
    }
}

impl std::fmt::Debug for Analyzer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Analyzer")
            .field("circuit_rules", &self.circuit_rules.len())
            .field("plan_rules", &self.plan_rules.len())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::gates::GateKind;
    use qsim_circuit::library;
    use qsim_core::diag::Severity;

    fn codes_of(report: &AnalysisReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn library_circuits_are_clean() {
        let a = Analyzer::new();
        for (name, c) in [
            ("bell", library::bell()),
            ("ghz", library::ghz(6)),
            ("qft", library::qft(5)),
            ("random_dense", library::random_dense(7, 40, 11)),
        ] {
            for f in [1, 2, 4] {
                let r = a.analyze(&c, f, SweepConfig::default());
                assert!(
                    !r.has_errors() && r.count(Severity::Warning) == 0,
                    "{name} f={f} not clean:\n{}",
                    r.render()
                );
            }
        }
    }

    #[test]
    fn full_registry_lists_all_rules() {
        let names = Analyzer::new().rule_names();
        assert!(names.contains(&"circuit-structure"));
        assert!(names.contains(&"plan-equivalence"));
        assert!(names.len() > Analyzer::pre_run().rule_names().len());
    }

    #[test]
    fn invalid_circuit_reports_structure_and_skips_plan() {
        let mut c = Circuit::new(2);
        c.add(0, GateKind::H, &[5]);
        let r = Analyzer::new().analyze(&c, 2, SweepConfig::default());
        assert!(r.has_errors());
        assert!(codes_of(&r).contains(&qsim_circuit::circuit::codes::QUBIT_OUT_OF_RANGE));
        // No plan diagnostics: fusion is skipped for invalid circuits.
        assert!(codes_of(&r).iter().all(|c| !c.starts_with("QP")));
    }

    #[test]
    fn identity_gate_flagged() {
        let mut c = Circuit::new(1);
        c.add(0, GateKind::Id, &[0]);
        let r = Analyzer::new().analyze_circuit(&c);
        assert!(codes_of(&r).contains(&codes::IDENTITY_GATE));
        assert!(!r.has_errors());
    }

    #[test]
    fn gate_after_measurement_flagged() {
        let mut c = Circuit::new(2);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Measurement, &[0]);
        c.add(2, GateKind::X, &[0]);
        let r = Analyzer::new().analyze_circuit(&c);
        assert!(codes_of(&r).contains(&codes::GATE_AFTER_MEASUREMENT));
        // Same gate on the *other* qubit is fine.
        let mut c2 = Circuit::new(2);
        c2.add(0, GateKind::H, &[0]);
        c2.add(1, GateKind::Measurement, &[0]);
        c2.add(2, GateKind::X, &[1]);
        let r2 = Analyzer::new().analyze_circuit(&c2);
        assert!(!codes_of(&r2).contains(&codes::GATE_AFTER_MEASUREMENT));
    }

    #[test]
    fn empty_circuit_flagged() {
        let r = Analyzer::new().analyze_circuit(&Circuit::new(3));
        assert_eq!(codes_of(&r), vec![codes::EMPTY_CIRCUIT]);
    }

    #[test]
    fn fused_plans_of_good_circuits_are_clean() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(10, 8, 7));
        let a = Analyzer::new();
        for f in 1..=6 {
            let plan = qsim_fusion::fuse(&c, f);
            let r = a.analyze_plan(&plan, Some(&c), SweepConfig::default());
            assert!(!r.has_errors(), "f={f}:\n{}", r.render());
        }
    }

    #[test]
    fn pre_run_registry_has_no_circuit_rules_and_no_probe() {
        let names = Analyzer::pre_run().rule_names();
        assert!(!names.contains(&"plan-equivalence"));
        assert!(names.iter().all(|n| n.starts_with("plan-")));
    }

    #[test]
    fn custom_rule_extends_registry() {
        struct AlwaysNote;
        impl CircuitRule for AlwaysNote {
            fn name(&self) -> &'static str {
                "always-note"
            }
            fn check(&self, _ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::note(
                    "QA0199",
                    qsim_core::diag::Span::whole_circuit(),
                    "custom rule ran",
                ));
            }
        }
        let a = Analyzer::new().with_circuit_rule(Box::new(AlwaysNote));
        let r = a.analyze_circuit(&library::bell());
        assert!(codes_of(&r).contains(&"QA0199"));
    }
}
