//! The built-in lint rules.
//!
//! Circuit rules ([`Structure`], [`Unitarity`], [`IdentityGate`],
//! [`GateAfterMeasurement`], [`EmptyCircuit`]) walk the raw gate list;
//! plan rules ([`PlanShape`], [`PlanUnitarity`], [`PlanMeasurementOrder`],
//! [`PlanSourceAccounting`], [`PlanSweep`], [`PlanEquivalence`]) walk the
//! fuser's output. Every rule is independent: it appends findings and never
//! stops the pass. Rules are defensive — a malformed input produces
//! diagnostics, not panics, so one rule's subject matter never crashes
//! another rule.

use qsim_circuit::gates::GateKind;
use qsim_core::diag::{Diagnostic, Span};
use qsim_core::kernels::{self, MAX_GATE_QUBITS};
use qsim_core::matrix::GateMatrix;
use qsim_core::StateVector;
use qsim_fusion::{FusedGate, FusedOp};

use crate::{
    codes, CircuitCtx, CircuitRule, PlanCtx, PlanRule, EQUIVALENCE_MAX_QUBITS, EQUIVALENCE_TOL,
    PLAN_UNITARY_TOL_F64, UNITARY_TOL_F32, UNITARY_TOL_F64,
};

// ---------------------------------------------------------------- circuit

/// Structural invariants: arity, qubit ranges, duplicate operands,
/// control/target overlap, time monotonicity — delegated to
/// [`Circuit::validate`], which owns the `QC00xx` codes.
pub struct Structure;

impl CircuitRule for Structure {
    fn name(&self) -> &'static str {
        "circuit-structure"
    }

    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
        if let Err(diags) = ctx.circuit.validate() {
            out.extend(diags);
        }
    }
}

/// Every gate matrix must be unitary: exactly the property that makes a
/// state-vector simulation norm-preserving. Checked at `f64` (error) and
/// after casting to `f32` (warning — the precision axis of the paper's
/// Figure 8).
pub struct Unitarity;

impl CircuitRule for Unitarity {
    fn name(&self) -> &'static str {
        "gate-unitarity"
    }

    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, op) in ctx.circuit.ops.iter().enumerate() {
            let Some(m) = op.kind.matrix::<f64>() else {
                continue; // measurements have no matrix
            };
            let span = Span::op(i, op.time);
            if !m.is_unitary(UNITARY_TOL_F64) {
                out.push(
                    Diagnostic::error(
                        codes::NON_UNITARY_GATE,
                        span,
                        format!("gate '{}' is not unitary within {UNITARY_TOL_F64:.0e}", op.kind.name()),
                    )
                    .with_help("a non-unitary gate does not preserve the state norm; check the matrix entries"),
                );
            } else if !m.cast::<f32>().is_unitary(UNITARY_TOL_F32) {
                out.push(
                    Diagnostic::warning(
                        codes::UNITARITY_F32_LOSS,
                        span,
                        format!(
                            "gate '{}' loses unitarity beyond {UNITARY_TOL_F32:.0e} in single precision",
                            op.kind.name()
                        ),
                    )
                    .with_help("run this circuit in double precision (f64)"),
                );
            }
        }
    }
}

/// Dead gates: an explicit `id` (warning) or a parametrized gate whose
/// matrix collapses to the identity, e.g. `rz 0` (note). Either way the
/// gate costs a pass (or widens a fused product) without doing anything.
pub struct IdentityGate;

impl CircuitRule for IdentityGate {
    fn name(&self) -> &'static str {
        "identity-gate"
    }

    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, op) in ctx.circuit.ops.iter().enumerate() {
            let span = Span::op(i, op.time);
            if op.kind == GateKind::Id {
                out.push(
                    Diagnostic::warning(codes::IDENTITY_GATE, span, "explicit identity gate")
                        .with_help("remove it; it costs a pass over the state without effect"),
                );
                continue;
            }
            let Some(m) = op.kind.matrix::<f64>() else {
                continue;
            };
            if m.max_abs_diff(&GateMatrix::<f64>::identity(m.dim())) < 1e-12 {
                out.push(Diagnostic::note(
                    codes::IDENTITY_GATE,
                    span,
                    format!(
                        "gate '{}' acts as the identity (zero-angle rotation?)",
                        op.kind.name()
                    ),
                ));
            }
        }
    }
}

/// A unitary gate touching a qubit *after* that qubit was measured: legal
/// for the simulator (measurement collapses, the gate then acts on the
/// collapsed state) but almost always a circuit-authoring mistake in the
/// amplitude-query workloads this simulator targets.
pub struct GateAfterMeasurement;

impl CircuitRule for GateAfterMeasurement {
    fn name(&self) -> &'static str {
        "gate-after-measurement"
    }

    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
        let n = ctx.circuit.num_qubits;
        let mut measured_at: Vec<Option<usize>> = vec![None; n];
        for (i, op) in ctx.circuit.ops.iter().enumerate() {
            if op.is_measurement() {
                for &q in &op.qubits {
                    if q < n {
                        measured_at[q] = Some(i);
                    }
                }
                continue;
            }
            let shadowed = op
                .qubits
                .iter()
                .chain(op.controls.iter())
                .find(|&&q| q < n && measured_at[q].is_some());
            if let Some(&q) = shadowed {
                let m_idx = measured_at[q].unwrap_or_default();
                out.push(
                    Diagnostic::warning(
                        codes::GATE_AFTER_MEASUREMENT,
                        Span::op(i, op.time),
                        format!(
                            "gate '{}' acts on qubit {q}, which was measured at op {m_idx}",
                            op.kind.name()
                        ),
                    )
                    .with_help(
                        "gates after measurement act on the collapsed state; move the \
                         measurement to the end if amplitudes are queried",
                    ),
                );
            }
        }
    }
}

/// An empty circuit is executable but almost certainly a loading mistake.
pub struct EmptyCircuit;

impl CircuitRule for EmptyCircuit {
    fn name(&self) -> &'static str {
        "empty-circuit"
    }

    fn check(&self, ctx: &CircuitCtx<'_>, out: &mut Vec<Diagnostic>) {
        if ctx.circuit.ops.is_empty() {
            out.push(Diagnostic::warning(
                codes::EMPTY_CIRCUIT,
                Span::whole_circuit(),
                format!(
                    "circuit declares {} qubits but contains no operations",
                    ctx.circuit.num_qubits
                ),
            ));
        }
    }
}

// ------------------------------------------------------------------ plan

/// Well-formedness of each fused gate: sorted distinct in-range qubits,
/// matrix dimension `2^width`, width within kernel support, fusion-budget
/// legality, and a non-inverted source-time range.
pub struct PlanShape;

impl PlanRule for PlanShape {
    fn name(&self) -> &'static str {
        "plan-shape"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let plan = ctx.plan;
        if !(1..=MAX_GATE_QUBITS).contains(&plan.max_fused_qubits) {
            out.push(Diagnostic::error(
                codes::PLAN_FUSION_BUDGET_EXCEEDED,
                Span::whole_circuit(),
                format!(
                    "plan declares max_fused_qubits = {}, outside the supported 1..={MAX_GATE_QUBITS}",
                    plan.max_fused_qubits
                ),
            ));
        }
        for (i, op) in plan.ops.iter().enumerate() {
            let FusedOp::Unitary(g) = op else { continue };
            let span = Span::op(i, g.time_range.0);
            let w = g.width();
            if g.qubits.is_empty()
                || !g.qubits.windows(2).all(|p| p[0] < p[1])
                || g.qubits.iter().any(|&q| q >= plan.num_qubits)
            {
                out.push(
                    Diagnostic::error(
                        codes::PLAN_MALFORMED_QUBITS,
                        span,
                        format!(
                            "fused gate has malformed qubit set {:?} for a {}-qubit register",
                            g.qubits, plan.num_qubits
                        ),
                    )
                    .with_help("qubits must be sorted, distinct, and < num_qubits"),
                );
                continue; // width/dim checks would only repeat the confusion
            }
            if g.matrix.dim() != 1 << w {
                out.push(Diagnostic::error(
                    codes::PLAN_MATRIX_DIM_MISMATCH,
                    span,
                    format!(
                        "fused gate on {w} qubit(s) carries a {0}×{0} matrix (expected {1}×{1})",
                        g.matrix.dim(),
                        1usize << w
                    ),
                ));
            }
            if w > MAX_GATE_QUBITS {
                out.push(Diagnostic::error(
                    codes::PLAN_WIDTH_EXCEEDS_KERNEL,
                    span,
                    format!(
                        "fused gate spans {w} qubits; kernels support at most {MAX_GATE_QUBITS}"
                    ),
                ));
            } else if g.source_gates > 1 && w > plan.max_fused_qubits {
                // A single wide gate legitimately passes through unfused;
                // a *merged* product must respect the budget.
                out.push(Diagnostic::error(
                    codes::PLAN_FUSION_BUDGET_EXCEEDED,
                    span,
                    format!(
                        "{} source gates were merged into a {w}-qubit product, beyond the \
                         max_fused_qubits = {} budget",
                        g.source_gates, plan.max_fused_qubits
                    ),
                ));
            }
            if g.time_range.0 > g.time_range.1 {
                out.push(Diagnostic::error(
                    codes::PLAN_TIME_RANGE_INVERTED,
                    Span::op_only(i),
                    format!(
                        "fused gate time range ({}, {}) is inverted",
                        g.time_range.0, g.time_range.1
                    ),
                ));
            }
        }
    }
}

/// Norm preservation of the fused products: fusing unitaries by matrix
/// product and qubit-set expansion must yield unitaries. Checked at `f64`
/// (error) and after the backend's `f32` cast (warning).
pub struct PlanUnitarity;

impl PlanRule for PlanUnitarity {
    fn name(&self) -> &'static str {
        "plan-unitarity"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        for (i, op) in ctx.plan.ops.iter().enumerate() {
            let FusedOp::Unitary(g) = op else { continue };
            if g.matrix.dim() != 1 << g.width() {
                continue; // PlanShape reports the dimension mismatch
            }
            let span = Span::op(i, g.time_range.0);
            if !g.matrix.is_unitary(PLAN_UNITARY_TOL_F64) {
                out.push(
                    Diagnostic::error(
                        codes::PLAN_NON_UNITARY,
                        span,
                        format!(
                            "fused product of {} gate(s) on qubits {:?} is not unitary within {PLAN_UNITARY_TOL_F64:.0e}",
                            g.source_gates, g.qubits
                        ),
                    )
                    .with_help("the plan would not preserve the state norm; refuse to execute it"),
                );
            } else if !g.matrix_as::<f32>().is_unitary(UNITARY_TOL_F32) {
                out.push(
                    Diagnostic::warning(
                        codes::PLAN_UNITARITY_F32_LOSS,
                        span,
                        format!(
                            "fused product on qubits {:?} loses unitarity beyond {UNITARY_TOL_F32:.0e} in single precision",
                            g.qubits
                        ),
                    )
                    .with_help("run in double precision or lower max_fused_qubits"),
                );
            } else if g.matrix.max_abs_diff(&GateMatrix::<f64>::identity(g.matrix.dim())) < 1e-12 {
                // Unitary, but trivially so: the folded gates cancelled.
                out.push(
                    Diagnostic::warning(
                        codes::PLAN_IDENTITY_PASS,
                        span,
                        format!(
                            "fused product of {} gate(s) on qubits {:?} is the identity",
                            g.source_gates, g.qubits
                        ),
                    )
                    .with_help("the gates cancel; this pass streams the whole state for no effect"),
                );
            }
        }
    }
}

/// Measurement barriers must appear in non-decreasing time order: the
/// fuser keeps them in place, so a regression means the plan was edited
/// or mis-built.
pub struct PlanMeasurementOrder;

impl PlanRule for PlanMeasurementOrder {
    fn name(&self) -> &'static str {
        "plan-measurement-order"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let mut last: Option<usize> = None;
        for (i, op) in ctx.plan.ops.iter().enumerate() {
            let FusedOp::Measurement { time, .. } = op else { continue };
            if let Some(prev) = last {
                if *time < prev {
                    out.push(Diagnostic::error(
                        codes::PLAN_MEASUREMENT_ORDER,
                        Span::op(i, *time),
                        format!(
                            "measurement at time {time} appears after a measurement at time {prev}"
                        ),
                    ));
                }
            }
            last = Some((*time).max(last.unwrap_or(0)));
        }
    }
}

/// Cross-check the plan against its source circuit: same register width,
/// every non-measurement source gate folded exactly once, every
/// measurement barrier preserved. No-op when the source is unavailable.
pub struct PlanSourceAccounting;

impl PlanRule for PlanSourceAccounting {
    fn name(&self) -> &'static str {
        "plan-source-accounting"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let Some(src) = ctx.source else { return };
        let plan = ctx.plan;
        if src.num_qubits != plan.num_qubits {
            out.push(Diagnostic::error(
                codes::PLAN_SOURCE_MISMATCH,
                Span::whole_circuit(),
                format!(
                    "plan is for {} qubits but its source circuit declares {}",
                    plan.num_qubits, src.num_qubits
                ),
            ));
        }
        let src_gates = src.ops.iter().filter(|o| !o.is_measurement()).count();
        let folded = plan.source_gate_count();
        if folded != src_gates {
            out.push(
                Diagnostic::error(
                    codes::PLAN_SOURCE_MISMATCH,
                    Span::whole_circuit(),
                    format!(
                        "plan accounts for {folded} source gate(s) but the circuit has {src_gates}"
                    ),
                )
                .with_help("every non-measurement gate must fold into exactly one fused gate"),
            );
        }
        let src_measurements = src.ops.iter().filter(|o| o.is_measurement()).count();
        let plan_measurements = plan.measurements().count();
        if src_measurements != plan_measurements {
            out.push(Diagnostic::error(
                codes::PLAN_SOURCE_MISMATCH,
                Span::whole_circuit(),
                format!(
                    "plan keeps {plan_measurements} measurement barrier(s) but the circuit has {src_measurements}"
                ),
            ));
        }
    }
}

/// Sweep-barrier sanity: re-derive the block-local / barrier split from
/// [`qsim_core::sweep::is_block_local`] and check it against the pass
/// accounting of [`FusedCircuit::sweep_stats`] — the executor and the
/// analyzer must agree on what a barrier is. Also emits a performance
/// note when barriers dominate.
pub struct PlanSweep;

impl PlanRule for PlanSweep {
    fn name(&self) -> &'static str {
        "plan-sweep-accounting"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let plan = ctx.plan;
        let stats = plan.sweep_stats(&ctx.sweep);
        let gates = plan.num_unitaries() as u64;
        if stats.gates != gates {
            out.push(Diagnostic::error(
                codes::PLAN_SWEEP_ACCOUNTING,
                Span::whole_circuit(),
                format!("sweep stats saw {} gate(s) but the plan has {gates}", stats.gates),
            ));
            return;
        }
        if !ctx.sweep.enabled {
            if stats.full_passes != stats.gates {
                out.push(Diagnostic::error(
                    codes::PLAN_SWEEP_ACCOUNTING,
                    Span::whole_circuit(),
                    format!(
                        "sweep disabled but pass count {} differs from gate count {}",
                        stats.full_passes, stats.gates
                    ),
                ));
            }
            return;
        }
        let bq = ctx.sweep.block_qubits(plan.num_qubits);
        let local =
            plan.unitaries().filter(|g| qsim_core::sweep::is_block_local(&g.qubits, bq)).count()
                as u64;
        if stats.block_local_gates != local || stats.barrier_gates != gates - local {
            out.push(
                Diagnostic::error(
                    codes::PLAN_SWEEP_ACCOUNTING,
                    Span::whole_circuit(),
                    format!(
                        "sweep classified {}/{} gate(s) block-local, but is_block_local(block_qubits = {bq}) \
                         marks {local}",
                        stats.block_local_gates, stats.gates
                    ),
                )
                .with_help("the sweep executor and the locality predicate disagree — executor bug"),
            );
        }
        if stats.full_passes != stats.runs + stats.barrier_gates {
            out.push(Diagnostic::error(
                codes::PLAN_SWEEP_ACCOUNTING,
                Span::whole_circuit(),
                format!(
                    "pass identity violated: {} full passes ≠ {} runs + {} barrier gates",
                    stats.full_passes, stats.runs, stats.barrier_gates
                ),
            ));
        }
        if gates > 0 && stats.barrier_gates * 2 > gates {
            out.push(
                Diagnostic::note(
                    codes::PLAN_SWEEP_BARRIER_HEAVY,
                    Span::whole_circuit(),
                    format!(
                        "{} of {gates} fused gate(s) are sweep barriers (targets ≥ qubit {bq})",
                        stats.barrier_gates
                    ),
                )
                .with_help(
                    "the cache-blocked sweep cannot batch these passes; this is expected for \
                     wide registers and does not affect correctness",
                ),
            );
        }
    }
}

/// Probe-state equivalence: evolve two basis states through the source
/// circuit (reference kernels) and through the plan's fused unitaries;
/// amplitudes must agree. The strongest plan check, but `O(gates · 2^n)`,
/// so it only runs for registers up to [`EQUIVALENCE_MAX_QUBITS`] and is
/// excluded from the backend pre-run registry.
pub struct PlanEquivalence;

impl PlanRule for PlanEquivalence {
    fn name(&self) -> &'static str {
        "plan-equivalence"
    }

    fn check(&self, ctx: &PlanCtx<'_>, out: &mut Vec<Diagnostic>) {
        let Some(src) = ctx.source else { return };
        let plan = ctx.plan;
        let n = plan.num_qubits;
        // Only probe structurally sound inputs: shape errors are already
        // reported, and applying a malformed plan would panic in kernels.
        if src.num_qubits != n || src.validate().is_err() || !plan.unitaries().all(well_formed(n)) {
            return;
        }
        if n > EQUIVALENCE_MAX_QUBITS {
            out.push(Diagnostic::note(
                codes::PLAN_EQUIVALENCE_SKIPPED,
                Span::whole_circuit(),
                format!(
                    "probe-state equivalence skipped: {n} qubits exceeds the \
                     {EQUIVALENCE_MAX_QUBITS}-qubit probe budget"
                ),
            ));
            return;
        }
        for basis in [0usize, (1usize << n) - 1] {
            let mut reference = StateVector::<f64>::new(n);
            reference.set_basis_state(basis);
            for op in &src.ops {
                if op.is_measurement() {
                    continue; // both sides compare the unitary part only
                }
                let Some((qs, m)) = op.sorted_matrix::<f64>() else { continue };
                if op.controls.is_empty() {
                    kernels::apply_gate_seq(&mut reference, &qs, &m);
                } else {
                    let all_ones = (1usize << op.controls.len()) - 1;
                    kernels::apply_controlled_gate_seq(
                        &mut reference,
                        &qs,
                        &op.controls,
                        all_ones,
                        &m,
                    );
                }
            }
            let mut fused = StateVector::<f64>::new(n);
            fused.set_basis_state(basis);
            for g in plan.unitaries() {
                kernels::apply_gate_seq(&mut fused, &g.qubits, &g.matrix);
            }
            let diff = reference.max_abs_diff(&fused);
            if diff > EQUIVALENCE_TOL {
                out.push(
                    Diagnostic::error(
                        codes::PLAN_EQUIVALENCE_DIVERGED,
                        Span::whole_circuit(),
                        format!(
                            "plan diverges from its source circuit by {diff:.2e} on probe state \
                             |{basis:0>width$b}⟩",
                            width = n
                        ),
                    )
                    .with_help("the fused plan does not implement the circuit it was built from"),
                );
                return; // one probe failure is conclusive
            }
        }
    }
}

/// Predicate used to guard the equivalence probe against malformed gates.
fn well_formed(n: usize) -> impl Fn(&FusedGate) -> bool {
    move |g: &FusedGate| {
        !g.qubits.is_empty()
            && g.qubits.windows(2).all(|p| p[0] < p[1])
            && g.qubits.iter().all(|&q| q < n)
            && g.width() <= MAX_GATE_QUBITS
            && g.matrix.dim() == 1 << g.width()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::circuit::Circuit;
    use qsim_core::sweep::SweepConfig;
    use qsim_core::types::Cplx;
    use qsim_fusion::FusedCircuit;

    use crate::Analyzer;

    fn plan_codes(plan: &FusedCircuit, source: Option<&Circuit>) -> Vec<&'static str> {
        Analyzer::new()
            .analyze_plan(plan, source, SweepConfig::default())
            .diagnostics
            .iter()
            .map(|d| d.code)
            .collect()
    }

    fn one_gate_plan(gate: FusedGate, num_qubits: usize) -> FusedCircuit {
        FusedCircuit { num_qubits, ops: vec![FusedOp::Unitary(gate)], max_fused_qubits: 2 }
    }

    fn h_gate(qubits: Vec<usize>) -> FusedGate {
        FusedGate {
            qubits,
            matrix: GateKind::H.matrix::<f64>().unwrap(),
            source_gates: 1,
            time_range: (0, 0),
        }
    }

    #[test]
    fn malformed_qubits_detected() {
        for qubits in [vec![], vec![1, 0], vec![0, 0], vec![9]] {
            let mut g = h_gate(qubits.clone());
            // Give multi-qubit lists a matching matrix so only the qubit
            // set is at fault.
            if qubits.len() == 2 {
                g.matrix = GateMatrix::identity(4);
            }
            let plan = one_gate_plan(g, 2);
            assert!(
                plan_codes(&plan, None).contains(&codes::PLAN_MALFORMED_QUBITS),
                "{qubits:?} should be malformed"
            );
        }
    }

    #[test]
    fn matrix_dim_mismatch_detected() {
        let mut g = h_gate(vec![0, 1]);
        g.matrix = GateKind::H.matrix::<f64>().unwrap(); // 2×2 for 2 qubits
        let plan = one_gate_plan(g, 2);
        assert!(plan_codes(&plan, None).contains(&codes::PLAN_MATRIX_DIM_MISMATCH));
    }

    #[test]
    fn overwide_gate_detected() {
        let w = MAX_GATE_QUBITS + 1;
        let g = FusedGate {
            qubits: (0..w).collect(),
            matrix: GateMatrix::identity(1 << w),
            source_gates: 1,
            time_range: (0, 0),
        };
        let plan = one_gate_plan(g, w);
        assert!(plan_codes(&plan, None).contains(&codes::PLAN_WIDTH_EXCEEDS_KERNEL));
    }

    #[test]
    fn merged_beyond_budget_detected_but_passthrough_allowed() {
        // A 3-qubit gate from a single source gate passes through a
        // max_fused_qubits = 2 plan legally…
        let single = FusedGate {
            qubits: vec![0, 1, 2],
            matrix: GateMatrix::identity(8),
            source_gates: 1,
            time_range: (0, 0),
        };
        let plan = one_gate_plan(single, 3);
        assert!(!plan_codes(&plan, None).contains(&codes::PLAN_FUSION_BUDGET_EXCEEDED));
        // …but the same width from a *merge* of two gates violates it.
        let merged = FusedGate {
            qubits: vec![0, 1, 2],
            matrix: GateMatrix::identity(8),
            source_gates: 2,
            time_range: (0, 1),
        };
        let plan = one_gate_plan(merged, 3);
        assert!(plan_codes(&plan, None).contains(&codes::PLAN_FUSION_BUDGET_EXCEEDED));
    }

    #[test]
    fn non_unitary_plan_detected() {
        let mut g = h_gate(vec![0]);
        g.matrix.set(0, 0, Cplx::new(3.0, 0.0)); // break the norm
        let plan = one_gate_plan(g, 1);
        let codes_found = plan_codes(&plan, None);
        assert!(codes_found.contains(&codes::PLAN_NON_UNITARY));
    }

    #[test]
    fn cancelled_product_flagged_as_identity_pass() {
        let mut src = Circuit::new(1);
        src.add(0, GateKind::H, &[0]);
        src.add(1, GateKind::H, &[0]);
        let fused = qsim_fusion::fuse(&src, 2);
        let found = plan_codes(&fused, Some(&src));
        assert!(found.contains(&codes::PLAN_IDENTITY_PASS));
        // It's a warning, not an error.
        let r = Analyzer::new().analyze_plan(&fused, Some(&src), SweepConfig::default());
        assert!(!r.has_errors());
    }

    #[test]
    fn inverted_time_range_detected() {
        let mut g = h_gate(vec![0]);
        g.time_range = (5, 2);
        let plan = one_gate_plan(g, 1);
        assert!(plan_codes(&plan, None).contains(&codes::PLAN_TIME_RANGE_INVERTED));
    }

    #[test]
    fn measurement_regression_detected() {
        let plan = FusedCircuit {
            num_qubits: 1,
            ops: vec![
                FusedOp::Measurement { qubits: vec![0], time: 4 },
                FusedOp::Measurement { qubits: vec![0], time: 1 },
            ],
            max_fused_qubits: 2,
        };
        assert!(plan_codes(&plan, None).contains(&codes::PLAN_MEASUREMENT_ORDER));
    }

    #[test]
    fn source_accounting_mismatch_detected() {
        let mut src = Circuit::new(1);
        src.add(0, GateKind::H, &[0]);
        src.add(1, GateKind::X, &[0]);
        // A plan claiming only one folded gate under-accounts.
        let plan = one_gate_plan(h_gate(vec![0]), 1);
        assert!(plan_codes(&plan, Some(&src)).contains(&codes::PLAN_SOURCE_MISMATCH));
        // The real fuser's plan accounts exactly.
        let fused = qsim_fusion::fuse(&src, 2);
        assert!(!plan_codes(&fused, Some(&src)).contains(&codes::PLAN_SOURCE_MISMATCH));
    }

    #[test]
    fn equivalence_probe_catches_wrong_plan() {
        let mut src = Circuit::new(2);
        src.add(0, GateKind::H, &[0]);
        src.add(1, GateKind::Cnot, &[0, 1]);
        // A plan that instead applies X on qubit 1: structurally clean,
        // semantically wrong.
        let wrong = one_gate_plan(
            FusedGate {
                qubits: vec![1],
                matrix: GateKind::X.matrix::<f64>().unwrap(),
                source_gates: 2,
                time_range: (0, 1),
            },
            2,
        );
        assert!(plan_codes(&wrong, Some(&src)).contains(&codes::PLAN_EQUIVALENCE_DIVERGED));
        // The real fuser's plan is equivalent.
        let fused = qsim_fusion::fuse(&src, 2);
        assert!(!plan_codes(&fused, Some(&src)).contains(&codes::PLAN_EQUIVALENCE_DIVERGED));
    }

    #[test]
    fn equivalence_probe_skips_large_registers() {
        let n = EQUIVALENCE_MAX_QUBITS + 1;
        let mut src = Circuit::new(n);
        src.add(0, GateKind::H, &[0]);
        let fused = qsim_fusion::fuse(&src, 2);
        let found = plan_codes(&fused, Some(&src));
        assert!(found.contains(&codes::PLAN_EQUIVALENCE_SKIPPED));
        assert!(!found.contains(&codes::PLAN_EQUIVALENCE_DIVERGED));
    }

    #[test]
    fn equivalence_probe_handles_controlled_ops() {
        use qsim_circuit::circuit::GateOp;
        let mut src = Circuit::new(3);
        src.ops.push(GateOp::with_controls(0, GateKind::H, vec![0], vec![2]));
        let fused = qsim_fusion::fuse(&src, 3);
        assert!(!plan_codes(&fused, Some(&src)).contains(&codes::PLAN_EQUIVALENCE_DIVERGED));
    }

    #[test]
    fn sweep_accounting_clean_and_barrier_note() {
        // 2-qubit plan under the default block: everything local, no note.
        let src = qsim_circuit::library::bell();
        let fused = qsim_fusion::fuse(&src, 2);
        let found = plan_codes(&fused, Some(&src));
        assert!(!found.contains(&codes::PLAN_SWEEP_ACCOUNTING));
        assert!(!found.contains(&codes::PLAN_SWEEP_BARRIER_HEAVY));
        // Tiny blocks turn the CZ-containing fused gate into a barrier.
        let r = Analyzer::new().analyze_plan(&fused, Some(&src), SweepConfig::with_block_amps(2));
        let found: Vec<_> = r.diagnostics.iter().map(|d| d.code).collect();
        assert!(!found.contains(&codes::PLAN_SWEEP_ACCOUNTING));
        assert!(found.contains(&codes::PLAN_SWEEP_BARRIER_HEAVY));
    }

    #[test]
    fn sweep_disabled_is_clean() {
        let src = qsim_circuit::library::ghz(5);
        let fused = qsim_fusion::fuse(&src, 3);
        let r = Analyzer::new().analyze_plan(&fused, Some(&src), SweepConfig::disabled());
        assert!(r.diagnostics.iter().all(|d| d.code != codes::PLAN_SWEEP_ACCOUNTING));
    }
}
