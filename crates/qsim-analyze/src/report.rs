//! The analysis result container: diagnostics plus severity accounting,
//! with human-readable and JSON renderings for the CLI.

use qsim_core::diag::{Diagnostic, Severity};
use serde_json::{json, Value};

/// Everything one analysis pass found, in rule/op order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AnalysisReport {
    /// All findings, in the order the rules emitted them.
    pub diagnostics: Vec<Diagnostic>,
}

impl AnalysisReport {
    /// Empty report (a clean analysis).
    pub fn new() -> AnalysisReport {
        AnalysisReport::default()
    }

    /// Wrap an already-collected diagnostic list.
    pub fn from_diagnostics(diagnostics: Vec<Diagnostic>) -> AnalysisReport {
        AnalysisReport { diagnostics }
    }

    /// Append another report's findings (keeps emission order).
    pub fn extend(&mut self, other: AnalysisReport) {
        self.diagnostics.extend(other.diagnostics);
    }

    /// Number of findings at exactly `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics.iter().filter(|d| d.severity == severity).count()
    }

    /// Whether any finding is an [`Severity::Error`].
    pub fn has_errors(&self) -> bool {
        self.diagnostics.iter().any(|d| d.severity == Severity::Error)
    }

    /// The worst severity present, or `None` for a clean report.
    pub fn max_severity(&self) -> Option<Severity> {
        self.diagnostics.iter().map(|d| d.severity).max()
    }

    /// Exit-code policy: a report *passes* when it has no errors, and —
    /// under `deny_warnings` — no warnings either. Notes never fail.
    pub fn passes(&self, deny_warnings: bool) -> bool {
        if self.has_errors() {
            return false;
        }
        !deny_warnings || self.count(Severity::Warning) == 0
    }

    /// Findings at exactly `severity`, in emission order.
    pub fn at(&self, severity: Severity) -> impl Iterator<Item = &Diagnostic> {
        self.diagnostics.iter().filter(move |d| d.severity == severity)
    }

    /// Human-readable rendering: one line per finding (worst first),
    /// then a summary line.
    pub fn render(&self) -> String {
        let mut lines: Vec<String> = Vec::with_capacity(self.diagnostics.len() + 1);
        for severity in [Severity::Error, Severity::Warning, Severity::Note] {
            lines.extend(self.at(severity).map(ToString::to_string));
        }
        lines.push(self.summary());
        lines.join("\n")
    }

    /// The one-line summary (`"2 errors, 1 warning, 0 notes"` or
    /// `"no findings"`).
    pub fn summary(&self) -> String {
        if self.diagnostics.is_empty() {
            return "no findings".to_string();
        }
        let plural = |n: usize, word: &str| format!("{n} {word}{}", if n == 1 { "" } else { "s" });
        format!(
            "{}, {}, {}",
            plural(self.count(Severity::Error), "error"),
            plural(self.count(Severity::Warning), "warning"),
            plural(self.count(Severity::Note), "note")
        )
    }

    /// JSON rendering for `analyze --json`: stable field names, findings
    /// in emission order.
    pub fn to_json(&self) -> Value {
        let findings: Vec<Value> = self.diagnostics.iter().map(diag_json).collect();
        json!({
            "errors": (self.count(Severity::Error)),
            "warnings": (self.count(Severity::Warning)),
            "notes": (self.count(Severity::Note)),
            "findings": (Value::Array(findings)),
        })
    }

    /// Pretty-printed JSON string (what `--json` prints).
    pub fn to_json_string(&self) -> String {
        serde_json::to_string_pretty(&self.to_json()).expect("report JSON serializes")
    }
}

fn diag_json(d: &Diagnostic) -> Value {
    json!({
        "code": (d.code),
        "severity": (d.severity.label()),
        "op_index": (d.span.op_index),
        "time": (d.span.time),
        "message": (d.message.as_str()),
        "help": (d.help.as_deref()),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_core::diag::Span;

    fn sample() -> AnalysisReport {
        AnalysisReport::from_diagnostics(vec![
            Diagnostic::note("QP0213", Span::whole_circuit(), "barrier heavy"),
            Diagnostic::error("QA0101", Span::op(2, 1), "not unitary").with_help("check matrix"),
            Diagnostic::warning("QA0103", Span::op_only(0), "identity gate"),
        ])
    }

    #[test]
    fn counts_and_severity() {
        let r = sample();
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.count(Severity::Warning), 1);
        assert_eq!(r.count(Severity::Note), 1);
        assert!(r.has_errors());
        assert_eq!(r.max_severity(), Some(Severity::Error));
        assert_eq!(AnalysisReport::new().max_severity(), None);
    }

    #[test]
    fn pass_policy() {
        let r = sample();
        assert!(!r.passes(false));
        let warn_only = AnalysisReport::from_diagnostics(vec![Diagnostic::warning(
            "QA0103",
            Span::op_only(0),
            "identity",
        )]);
        assert!(warn_only.passes(false));
        assert!(!warn_only.passes(true));
        let note_only = AnalysisReport::from_diagnostics(vec![Diagnostic::note(
            "QP0213",
            Span::whole_circuit(),
            "hint",
        )]);
        assert!(note_only.passes(true));
    }

    #[test]
    fn render_orders_worst_first() {
        let text = sample().render();
        let err = text.find("error[QA0101]").unwrap();
        let warn = text.find("warning[QA0103]").unwrap();
        let note = text.find("note[QP0213]").unwrap();
        assert!(err < warn && warn < note);
        assert!(text.ends_with("1 error, 1 warning, 1 note"));
        assert_eq!(AnalysisReport::new().render(), "no findings");
    }

    #[test]
    fn json_shape_roundtrips() {
        let v = sample().to_json();
        let s = sample().to_json_string();
        let back: Value = serde_json::from_str(&s).unwrap();
        assert_eq!(back, v);
        let obj = match v {
            Value::Object(fields) => fields,
            other => panic!("expected object, got {other:?}"),
        };
        let get = |k: &str| obj.iter().find(|(key, _)| key == k).map(|(_, v)| v.clone()).unwrap();
        assert_eq!(get("errors"), Value::Number(1.0));
        let findings = match get("findings") {
            Value::Array(a) => a,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(findings.len(), 3);
        let s = serde_json::to_string(&findings[1]).unwrap();
        assert!(s.contains("\"code\":\"QA0101\""));
        assert!(s.contains("\"op_index\":2"));
        assert!(s.contains("\"help\":\"check matrix\""));
        // Whole-circuit spans serialize as nulls.
        let s0 = serde_json::to_string(&findings[0]).unwrap();
        assert!(s0.contains("\"op_index\":null"));
    }
}
