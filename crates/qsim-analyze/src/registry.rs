//! The unified rule registry: every stable diagnostic code the workspace
//! can emit, across all four ranges (`QC00xx` structural, `QA01xx`
//! circuit-semantic, `QP02xx` fused-plan, `QL03xx` concurrency), with
//! its severity and a one-line summary.
//!
//! `DIAGNOSTICS.md` at the repo root is *generated* from this table
//! ([`diagnostics_markdown`]); the `diagnostics_sync` test and the CI
//! `lint-conc` job both fail when the file and the registry drift. Add a
//! code here in the same change that introduces its first emit site.

use crate::concurrency::codes as ql;
use qsim_circuit::circuit::codes as qc;

/// One registered diagnostic rule.
#[derive(Debug, Clone, Copy)]
pub struct RuleInfo {
    /// Stable code (`QC0001`, …). Never renumbered; retired codes are
    /// removed from emit sites but stay reserved.
    pub code: &'static str,
    /// Short kebab-case rule name.
    pub name: &'static str,
    /// Severity as emitted ("error", "warning", "note", or a split like
    /// "error / warning" when the rule grades by evidence).
    pub severity: &'static str,
    /// One-line summary of what the rule fires on.
    pub summary: &'static str,
}

/// Every stable diagnostic code, ordered by range then number. The
/// `diagnostics_sync` test checks this list against the actual code
/// constants declared across the workspace.
pub const RULES: &[RuleInfo] = &[
    // QC00xx — circuit structure (qsim_circuit::circuit::codes).
    RuleInfo {
        code: qc::ARITY_MISMATCH,
        name: "arity-mismatch",
        severity: "error",
        summary: "Gate arity does not match its operand count.",
    },
    RuleInfo {
        code: qc::QUBIT_OUT_OF_RANGE,
        name: "qubit-out-of-range",
        severity: "error",
        summary: "Qubit index is `>= num_qubits`.",
    },
    RuleInfo {
        code: qc::DUPLICATE_QUBIT,
        name: "duplicate-qubit",
        severity: "error",
        summary: "Qubit repeated within one op's target operands.",
    },
    RuleInfo {
        code: qc::CONTROL_TARGET_OVERLAP,
        name: "control-target-overlap",
        severity: "error",
        summary: "Control qubit also appears as a target.",
    },
    RuleInfo {
        code: qc::TIME_REGRESSION,
        name: "time-regression",
        severity: "error",
        summary: "Op time decreases relative to a preceding op.",
    },
    RuleInfo {
        code: qc::SLICE_CONFLICT,
        name: "slice-conflict",
        severity: "error",
        summary: "Qubit touched by two ops in the same time slice.",
    },
    // QA01xx — circuit semantics (crate::codes).
    RuleInfo {
        code: crate::codes::NON_UNITARY_GATE,
        name: "non-unitary-gate",
        severity: "error",
        summary: "A gate matrix is not unitary within the f64 tolerance.",
    },
    RuleInfo {
        code: crate::codes::UNITARITY_F32_LOSS,
        name: "unitarity-f32-loss",
        severity: "warning",
        summary: "A gate is unitary in f64 but drifts past tolerance when cast to f32.",
    },
    RuleInfo {
        code: crate::codes::IDENTITY_GATE,
        name: "identity-gate",
        severity: "warning / note",
        summary: "A gate acts as the identity (explicit `id` warns; zero-angle rotation notes).",
    },
    RuleInfo {
        code: crate::codes::GATE_AFTER_MEASUREMENT,
        name: "gate-after-measurement",
        severity: "warning",
        summary: "A unitary gate acts on a qubit after that qubit was measured.",
    },
    RuleInfo {
        code: crate::codes::EMPTY_CIRCUIT,
        name: "empty-circuit",
        severity: "warning",
        summary: "The circuit contains no operations.",
    },
    // QP02xx — fused plans (crate::codes).
    RuleInfo {
        code: crate::codes::PLAN_MALFORMED_QUBITS,
        name: "plan-malformed-qubits",
        severity: "error",
        summary: "A fused gate's qubit list is empty, unsorted, duplicated, or out of range.",
    },
    RuleInfo {
        code: crate::codes::PLAN_MATRIX_DIM_MISMATCH,
        name: "plan-matrix-dim-mismatch",
        severity: "error",
        summary: "A fused gate's matrix dimension disagrees with its qubit count.",
    },
    RuleInfo {
        code: crate::codes::PLAN_WIDTH_EXCEEDS_KERNEL,
        name: "plan-width-exceeds-kernel",
        severity: "error",
        summary: "A fused gate is wider than the kernels support.",
    },
    RuleInfo {
        code: crate::codes::PLAN_FUSION_BUDGET_EXCEEDED,
        name: "plan-fusion-budget-exceeded",
        severity: "error",
        summary: "The fuser merged gates past the plan's own `max_fused_qubits` budget.",
    },
    RuleInfo {
        code: crate::codes::PLAN_NON_UNITARY,
        name: "plan-non-unitary",
        severity: "error",
        summary: "A fused product is not unitary — fusion destroyed norm preservation.",
    },
    RuleInfo {
        code: crate::codes::PLAN_UNITARITY_F32_LOSS,
        name: "plan-unitarity-f32-loss",
        severity: "warning",
        summary: "A fused product is unitary in f64 but drifts past tolerance in f32.",
    },
    RuleInfo {
        code: crate::codes::PLAN_TIME_RANGE_INVERTED,
        name: "plan-time-range-inverted",
        severity: "error",
        summary: "A fused gate's `(first, last)` source-time range is inverted.",
    },
    RuleInfo {
        code: crate::codes::PLAN_MEASUREMENT_ORDER,
        name: "plan-measurement-order",
        severity: "error",
        summary: "Measurement barriers appear out of time order in the plan.",
    },
    RuleInfo {
        code: crate::codes::PLAN_SOURCE_MISMATCH,
        name: "plan-source-mismatch",
        severity: "error",
        summary: "The plan disagrees with its source circuit's qubit/gate/barrier accounting.",
    },
    RuleInfo {
        code: crate::codes::PLAN_EQUIVALENCE_DIVERGED,
        name: "plan-equivalence-diverged",
        severity: "error",
        summary: "Probe states evolved through the plan diverge from the source circuit.",
    },
    RuleInfo {
        code: crate::codes::PLAN_EQUIVALENCE_SKIPPED,
        name: "plan-equivalence-skipped",
        severity: "note",
        summary: "The probe-state equivalence check was skipped (register too large).",
    },
    RuleInfo {
        code: crate::codes::PLAN_SWEEP_ACCOUNTING,
        name: "plan-sweep-accounting",
        severity: "error",
        summary: "Sweep pass accounting is inconsistent with the block-locality predicate.",
    },
    RuleInfo {
        code: crate::codes::PLAN_SWEEP_BARRIER_HEAVY,
        name: "plan-sweep-barrier-heavy",
        severity: "note",
        summary: "Most passes are sweep barriers — the cache-blocked sweep cannot help.",
    },
    RuleInfo {
        code: crate::codes::PLAN_IDENTITY_PASS,
        name: "plan-identity-pass",
        severity: "warning",
        summary: "A fused product collapsed to the identity: a full state pass doing nothing.",
    },
    // QL03xx — workspace concurrency (crate::concurrency::codes).
    RuleInfo {
        code: ql::LOCK_CYCLE,
        name: "lock-cycle",
        severity: "error",
        summary: "The lock-acquisition graph contains a cycle (two sites nest both ways).",
    },
    RuleInfo {
        code: ql::HELD_ACROSS_BLOCKING,
        name: "held-across-blocking",
        severity: "error",
        summary: "A lock guard is live across a blocking call (sleep, join, I/O, rayon).",
    },
    RuleInfo {
        code: ql::RAII_ESCAPE,
        name: "raii-escape",
        severity: "error / warning",
        summary: "`mem::forget`/`ManuallyDrop` defeats an RAII value (error when it is a \
                  tracked reservation).",
    },
    RuleInfo {
        code: ql::UNDOCUMENTED_UNSAFE,
        name: "undocumented-unsafe",
        severity: "warning",
        summary: "An `unsafe` block with no `SAFETY:` comment above it.",
    },
    RuleInfo {
        code: ql::UNGATED_INTRINSICS,
        name: "ungated-intrinsics",
        severity: "error",
        summary: "x86 intrinsics in a module whose `mod` declaration has no `target_arch` gate.",
    },
    RuleInfo {
        code: ql::UNRESOLVED_LOCK_SITE,
        name: "unresolved-lock-site",
        severity: "warning",
        summary: "A `.lock()` receiver or `track(\"…\")` literal that names no declared site.",
    },
    RuleInfo {
        code: ql::STALE_ALLOWLIST,
        name: "stale-allowlist",
        severity: "error",
        summary: "A `CONC_ALLOWLIST.txt` entry that is malformed or matches no finding.",
    },
    RuleInfo {
        code: ql::NAKED_CONDVAR_WAIT,
        name: "naked-condvar-wait",
        severity: "warning",
        summary: "A `Condvar::wait` outside a loop — spurious wakeups break the predicate.",
    },
];

/// Range prefix → (section title, one-line layer description).
const RANGES: &[(&str, &str, &str)] = &[
    ("QC00", "QC00xx — circuit structure", "`Circuit::validate`; structural well-formedness."),
    ("QA01", "QA01xx — circuit semantics", "`qsim-analyze` circuit rules; run by `qsim_base analyze` and every backend's pre-run gate."),
    ("QP02", "QP02xx — fused plans", "`qsim-analyze` plan rules; the fusion planner's output contract."),
    ("QL03", "QL03xx — workspace concurrency", "`qsim-analyze::concurrency` source lints; run by `qsim_lint` over the workspace itself."),
];

/// Render the registry as the full `DIAGNOSTICS.md` document. The output
/// is byte-stable for a given registry: the checked-in file must equal
/// it exactly.
pub fn diagnostics_markdown() -> String {
    let mut out = String::new();
    out.push_str(
        "# Diagnostic codes\n\
         \n\
         <!-- GENERATED FILE — do not edit by hand.\n\
         \x20    Source of truth: crates/qsim-analyze/src/registry.rs (RULES).\n\
         \x20    Regenerate with: cargo run -p qsim-cli --bin qsim_lint -- --emit-diagnostics\n\
         \x20    The diagnostics_sync test and the lint-conc CI job diff this file. -->\n\
         \n\
         Every stable diagnostic code the workspace emits, generated from the\n\
         rule registry in `qsim-analyze`. Codes are stable identifiers: tests,\n\
         `--json` consumers and `CONC_ALLOWLIST.txt` match on them, so codes are\n\
         never renumbered — retired codes stay reserved. Severity `error` fails\n\
         gates outright; `warning` fails them under `--deny-warnings`; `note` is\n\
         informational.\n",
    );
    for (prefix, title, blurb) in RANGES {
        out.push_str("\n## ");
        out.push_str(title);
        out.push_str("\n\n");
        out.push_str(blurb);
        out.push_str("\n\n| Code | Rule | Severity | Summary |\n|---|---|---|---|\n");
        for rule in RULES.iter().filter(|r| r.code.starts_with(prefix)) {
            out.push_str(&format!(
                "| `{}` | {} | {} | {} |\n",
                rule.code, rule.name, rule.severity, rule.summary
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique_sorted_and_in_a_known_range() {
        // Order is (documented range, number) — QC before QA before QP
        // before QL, which is not plain lexicographic order.
        let rank = |code: &str| {
            RANGES
                .iter()
                .position(|(p, _, _)| code.starts_with(p))
                .unwrap_or_else(|| panic!("{code} belongs to no documented range"))
        };
        let mut seen = std::collections::HashSet::new();
        let mut prev: Option<&RuleInfo> = None;
        for rule in RULES {
            assert!(seen.insert(rule.code), "duplicate code {}", rule.code);
            if let Some(prev) = prev {
                assert!(
                    (rank(prev.code), prev.code) < (rank(rule.code), rule.code),
                    "{} out of order after {}",
                    rule.code,
                    prev.code
                );
            }
            prev = Some(rule);
        }
    }

    #[test]
    fn markdown_lists_every_rule_exactly_once() {
        let md = diagnostics_markdown();
        for rule in RULES {
            let needle = format!("| `{}` |", rule.code);
            assert_eq!(md.matches(&needle).count(), 1, "{}", rule.code);
        }
    }
}
