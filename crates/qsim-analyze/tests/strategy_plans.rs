//! The analyzer must accept plans from every fusion strategy: whatever
//! the cost model decides to merge, the resulting plan is still a legal,
//! unitary, source-accounted execution plan — both under the full
//! `analyze`-subcommand rule set and the backends' cheap pre-run gate.

use gpu_model::specs::DeviceSpec;
use qsim_analyze::Analyzer;
use qsim_circuit::circuit::Circuit;
use qsim_circuit::gates::GateKind;
use qsim_circuit::library;
use qsim_core::sweep::SweepConfig;
use qsim_core::types::Precision;
use qsim_fusion::{plan, CpuCostModel, FusionCostModel, FusionStrategy, GpuCostModel};

fn models() -> Vec<Box<dyn FusionCostModel>> {
    vec![
        Box::new(CpuCostModel::new(
            DeviceSpec::epyc_trento(),
            2,
            SweepConfig::default(),
            Precision::Double,
        )),
        Box::new(GpuCostModel::new(DeviceSpec::mi250x_gcd(), 2.0, Precision::Single)),
        Box::new(GpuCostModel::new(DeviceSpec::a100(), 0.05, Precision::Single)),
    ]
}

/// Every strategy × cost model × fusion budget produces a plan the full
/// rule set (including the probe-state equivalence check — the circuit is
/// small enough) passes without findings.
#[test]
fn every_strategy_passes_full_analysis() {
    let circuit = library::random_dense(7, 60, 9);
    let analyzer = Analyzer::new();
    for model in models() {
        for strategy in FusionStrategy::ALL {
            for max_fused in 2..=5 {
                let p = plan(&circuit, strategy, max_fused, model.as_ref());
                let report = analyzer.analyze_fused(&circuit, &p.fused, SweepConfig::default());
                assert!(
                    report.passes(true),
                    "{strategy:?} f={max_fused} on {}: {report:?}",
                    model.name()
                );
            }
        }
    }
}

/// Cost-planned circuits with mid-circuit measurements keep the
/// measurement-order and source-accounting lints green.
#[test]
fn cost_plans_with_measurements_pass_pre_run_gate() {
    let mut circuit = Circuit::new(6);
    let dense = library::random_dense(6, 30, 4);
    circuit.ops.clone_from(&dense.ops);
    let t = circuit.ops.iter().map(|op| op.time).max().unwrap_or(0);
    circuit.add(t + 1, GateKind::Measurement, &[2]);
    circuit.add(t + 2, GateKind::H, &[2]);
    circuit.add(t + 3, GateKind::Cnot, &[2, 3]);

    let analyzer = Analyzer::pre_run();
    for model in models() {
        for strategy in FusionStrategy::ALL {
            let p = plan(&circuit, strategy, 4, model.as_ref());
            let report = analyzer.analyze_plan(&p.fused, Some(&circuit), SweepConfig::default());
            assert!(!report.has_errors(), "{strategy:?} on {}: {report:?}", model.name());
        }
    }
}

/// `analyze_fused` still reports circuit-level findings before plan-level
/// ones — a bad circuit short-circuits plan linting exactly like
/// [`Analyzer::analyze`].
#[test]
fn analyze_fused_reports_circuit_errors_first() {
    let mut bad = Circuit::new(2);
    bad.add(0, GateKind::H, &[5]); // out of range
    let good_plan = qsim_fusion::fuse(&library::bell(), 2);
    let report = Analyzer::new().analyze_fused(&bad, &good_plan, SweepConfig::default());
    assert!(report.has_errors());
}
