//! `DIAGNOSTICS.md` is generated from the rule registry; these tests
//! keep the three parties honest: the checked-in file must match the
//! generator byte-for-byte, and the registry must cover exactly the
//! code constants declared across the workspace source.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

use qsim_analyze::registry::{diagnostics_markdown, RULES};

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..")
}

#[test]
fn checked_in_diagnostics_md_matches_the_registry() {
    let path = repo_root().join("DIAGNOSTICS.md");
    let on_disk =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert!(
        on_disk == diagnostics_markdown(),
        "DIAGNOSTICS.md is out of sync with the rule registry — regenerate it:\n\
         \x20   cargo run -p qsim-cli --bin qsim_lint -- --emit-diagnostics > DIAGNOSTICS.md"
    );
}

/// Collect every `pub const NAME: &str = "Qxxxx";` declaration under the
/// workspace's `crates/*/src` trees (fixtures and tests excluded).
fn declared_codes(dir: &Path, out: &mut BTreeSet<String>) {
    for entry in std::fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        if path.is_dir() {
            declared_codes(&path, out);
        } else if path.extension().is_some_and(|e| e == "rs") {
            let text = std::fs::read_to_string(&path).unwrap();
            for line in text.lines() {
                let Some(rest) = line.trim_start().strip_prefix("pub const ") else { continue };
                let Some((_, value)) = rest.split_once(": &str = \"") else { continue };
                let Some((code, _)) = value.split_once('"') else { continue };
                let range_ok = ["QC", "QA", "QP", "QL"].iter().any(|p| code.starts_with(p));
                if range_ok && code.len() == 6 && code[2..].chars().all(|c| c.is_ascii_digit()) {
                    out.insert(code.to_string());
                }
            }
        }
    }
}

#[test]
fn registry_covers_exactly_the_declared_code_constants() {
    let crates = repo_root().join("crates");
    let mut declared = BTreeSet::new();
    for entry in std::fs::read_dir(&crates).unwrap() {
        let src = entry.unwrap().path().join("src");
        if src.is_dir() {
            declared_codes(&src, &mut declared);
        }
    }
    let registered: BTreeSet<String> = RULES.iter().map(|r| r.code.to_string()).collect();
    let missing: Vec<_> = declared.difference(&registered).collect();
    let phantom: Vec<_> = registered.difference(&declared).collect();
    assert!(
        missing.is_empty() && phantom.is_empty(),
        "registry drift — declared but unregistered: {missing:?}; \
         registered but never declared: {phantom:?}"
    );
}
