//! Property tests for the analyzer's semantic rules: every gate the
//! circuit library can emit is unitary under the rule's tolerances, and
//! seeded known-bad circuits trigger exactly the advertised codes.

use proptest::prelude::*;

use qsim_analyze::{codes, Analyzer};
use qsim_circuit::circuit::Circuit;
use qsim_circuit::gates::GateKind;
use qsim_circuit::library;
use qsim_core::sweep::SweepConfig;

/// Every parameterless gate plus parameterised kinds with the given
/// angles; returns `(kind, qubit_count)`.
fn gate_from(idx: usize, a: f64, b: f64) -> (GateKind, usize) {
    match idx {
        0 => (GateKind::Id, 1),
        1 => (GateKind::X, 1),
        2 => (GateKind::Y, 1),
        3 => (GateKind::Z, 1),
        4 => (GateKind::H, 1),
        5 => (GateKind::S, 1),
        6 => (GateKind::T, 1),
        7 => (GateKind::X12, 1),
        8 => (GateKind::Y12, 1),
        9 => (GateKind::Hz12, 1),
        10 => (GateKind::Rx(a), 1),
        11 => (GateKind::Ry(a), 1),
        12 => (GateKind::Rz(a), 1),
        13 => (GateKind::Rxy(a, b), 1),
        14 => (GateKind::Cz, 2),
        15 => (GateKind::Cnot, 2),
        16 => (GateKind::Swap, 2),
        17 => (GateKind::ISwap, 2),
        18 => (GateKind::CPhase(a), 2),
        _ => (GateKind::FSim(a, b), 2),
    }
}

fn codes_of(report: &qsim_analyze::AnalysisReport) -> Vec<&str> {
    report.diagnostics.iter().map(|d| d.code).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// No gate constructible from the library's `GateKind` set fails the
    /// unitarity rule — neither the f64 error nor the f32-loss warning.
    #[test]
    fn every_library_gate_is_unitary(
        idx in 0usize..20,
        a in -7.0f64..7.0,
        b in -7.0f64..7.0,
    ) {
        let (kind, nq) = gate_from(idx, a, b);
        let mut c = Circuit::new(2);
        c.add(0, kind, if nq == 1 { &[0][..] } else { &[0, 1][..] });
        let report = Analyzer::new().analyze_circuit(&c);
        let cs = codes_of(&report);
        prop_assert!(!cs.contains(&codes::NON_UNITARY_GATE), "{report:?}");
        prop_assert!(!cs.contains(&codes::UNITARITY_F32_LOSS), "{report:?}");
    }

    /// Random dense circuits pass the full pipeline (circuit rules, plan
    /// rules, and the small-circuit equivalence probe) with no errors at
    /// any fusion width.
    #[test]
    fn random_dense_circuits_analyze_clean(
        n in 2usize..=6,
        gates in 1usize..=30,
        seed in 0u64..1000,
        f in 1usize..=4,
    ) {
        let c = library::random_dense(n, gates, seed);
        let report = Analyzer::new().analyze(&c, f, SweepConfig::default());
        prop_assert!(!report.has_errors(), "n={n} gates={gates} seed={seed} f={f}:\n{}", report.render());
    }
}

#[test]
fn seeded_bad_circuits_trigger_expected_codes() {
    // Qubit out of range.
    let mut c = Circuit::new(2);
    c.add(0, GateKind::H, &[5]);
    assert!(codes_of(&Analyzer::new().analyze_circuit(&c)).contains(&"QC0002"));

    // Duplicate qubit within one op.
    let mut c = Circuit::new(2);
    c.add(0, GateKind::Cz, &[1, 1]);
    assert!(codes_of(&Analyzer::new().analyze_circuit(&c)).contains(&"QC0003"));

    // Explicit identity gate.
    let mut c = Circuit::new(1);
    c.add(0, GateKind::Id, &[0]);
    assert!(codes_of(&Analyzer::new().analyze_circuit(&c)).contains(&codes::IDENTITY_GATE));

    // Gate applied to an already-measured qubit.
    let mut c = Circuit::new(2);
    c.add(0, GateKind::Measurement, &[0]);
    c.add(1, GateKind::H, &[0]);
    assert!(codes_of(&Analyzer::new().analyze_circuit(&c)).contains(&codes::GATE_AFTER_MEASUREMENT));

    // Empty circuit.
    let report = Analyzer::new().analyze_circuit(&Circuit::new(3));
    assert!(codes_of(&report).contains(&codes::EMPTY_CIRCUIT));
}

#[test]
fn library_showpieces_are_clean() {
    for (name, c) in
        [("bell", library::bell()), ("ghz6", library::ghz(6)), ("qft5", library::qft(5))]
    {
        let report = Analyzer::new().analyze(&c, 2, SweepConfig::default());
        assert!(report.passes(true), "{name} not clean:\n{}", report.render());
    }
}
