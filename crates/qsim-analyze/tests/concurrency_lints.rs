//! Integration tests for the concurrency lints, pinned against the
//! committed fixture trees under `tests/fixtures/`. The seeded-defect
//! fixture must produce *exactly* its three findings with stable codes —
//! this is the analyzer's noise/recall regression gate.

use std::path::PathBuf;

use qsim_analyze::concurrency::{analyze_workspace, codes, Allowlist};
use qsim_core::diag::Severity;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures").join(name)
}

#[test]
fn seeded_defects_yield_exactly_three_findings() {
    let report = analyze_workspace(&fixture("conc_fixture"), &Allowlist::default()).unwrap();
    let mut found: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    found.sort_unstable();
    assert_eq!(
        found,
        vec![codes::LOCK_CYCLE, codes::HELD_ACROSS_BLOCKING, codes::RAII_ESCAPE],
        "full report:\n{}",
        report.render()
    );
    // All three are errors: the cycle and the hold are deadlock-shaped,
    // and the forgotten value is provably a tracked reservation.
    assert!(report.diagnostics.iter().all(|d| d.severity == Severity::Error));

    let cycle = report.diagnostics.iter().find(|d| d.code == codes::LOCK_CYCLE).unwrap();
    assert!(cycle.message.contains("Pair.alpha") && cycle.message.contains("Pair.beta"));
    let hold = report.diagnostics.iter().find(|d| d.code == codes::HELD_ACROSS_BLOCKING).unwrap();
    assert!(hold.message.contains("Station.stats"), "{}", hold.message);
    let leak = report.diagnostics.iter().find(|d| d.code == codes::RAII_ESCAPE).unwrap();
    assert!(leak.message.contains("mem::forget"), "{}", leak.message);

    // The ordering graph saw both directions of the inversion.
    let has = |from: &str, to: &str| {
        report.edges.iter().any(|(f, t, _, _)| f.contains(from) && t.contains(to))
    };
    assert!(has("Pair.alpha", "Pair.beta"));
    assert!(has("Pair.beta", "Pair.alpha"));
}

#[test]
fn hygiene_defects_each_have_a_code() {
    let report = analyze_workspace(&fixture("conc_hygiene"), &Allowlist::default()).unwrap();
    let mut found: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    found.sort_unstable();
    assert_eq!(
        found,
        vec![
            codes::UNDOCUMENTED_UNSAFE,
            codes::UNGATED_INTRINSICS,
            codes::UNRESOLVED_LOCK_SITE,
            codes::NAKED_CONDVAR_WAIT,
        ],
        "full report:\n{}",
        report.render()
    );
    let gating = report.diagnostics.iter().find(|d| d.code == codes::UNGATED_INTRINSICS).unwrap();
    assert_eq!(gating.severity, Severity::Error);
    assert!(gating.span.file.ends_with("src/simd.rs"));
}

#[test]
fn allowlist_suppresses_and_staleness_is_an_error() {
    // A matching entry suppresses exactly its finding.
    let allow =
        Allowlist::parse("QL0302 | src/lib.rs | Station.stats | fixture: documented handshake\n");
    let report = analyze_workspace(&fixture("conc_fixture"), &allow).unwrap();
    let codes_left: Vec<&str> = report.diagnostics.iter().map(|d| d.code).collect();
    assert!(!codes_left.contains(&codes::HELD_ACROSS_BLOCKING));
    assert!(codes_left.contains(&codes::LOCK_CYCLE));
    assert_eq!(report.suppressed.len(), 1);

    // A stale entry turns into QL0307 instead of silently rotting.
    let stale = Allowlist::parse("QL0302 | no/such/file.rs | never matches | stale\n");
    let report = analyze_workspace(&fixture("conc_fixture"), &stale).unwrap();
    assert!(report.diagnostics.iter().any(|d| d.code == codes::STALE_ALLOWLIST));
    // The original three findings are all still present.
    assert_eq!(report.diagnostics.len(), 4, "{}", report.render());

    // Malformed lines are also QL0307 errors.
    let malformed = Allowlist::parse("QL0301 only two fields\n");
    let report = analyze_workspace(&fixture("conc_fixture"), &malformed).unwrap();
    assert!(report
        .diagnostics
        .iter()
        .any(|d| d.code == codes::STALE_ALLOWLIST && d.message.contains("malformed")));
}

#[test]
fn real_workspace_is_clean_under_the_checked_in_allowlist() {
    // The repo root is two levels up from this crate. This is the same
    // gate CI runs via `qsim_lint --deny-warnings`; keeping it in-tree
    // means `cargo test` alone catches concurrency-lint regressions.
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let allow = match std::fs::read_to_string(root.join("CONC_ALLOWLIST.txt")) {
        Ok(text) => Allowlist::parse(&text),
        Err(_) => Allowlist::default(),
    };
    let report = analyze_workspace(&root, &allow).unwrap();
    assert!(
        report.passes(true),
        "workspace concurrency lints must stay clean:\n{}",
        report.render()
    );
    // The one blessed ordering edge: job completion publishes results
    // under `registry` and then folds counters under `aggregates`.
    assert!(
        report.edges.iter().any(|(f, t, _, _)| f.ends_with("ServiceInner.registry")
            && t.ends_with("ServiceInner.aggregates")),
        "expected the registry -> aggregates edge; got:\n{}",
        report.render_graph()
    );
}
