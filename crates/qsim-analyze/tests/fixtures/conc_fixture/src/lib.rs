//! Seeded concurrency defects, one per lint family. The integration
//! test asserts that analyzing this tree yields *exactly* one QL0301,
//! one QL0302, and one QL0303 — nothing more, nothing less — so any
//! analyzer change that adds noise or loses a true positive fails CI.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

/// Two locks acquired in both orders on different paths: a classic
/// deadlock-shaped inversion (QL0301).
pub struct Pair {
    pub alpha: Mutex<u32>,
    pub beta: Mutex<u32>,
}

impl Pair {
    pub fn forward(&self) -> u32 {
        let a = self.alpha.lock().unwrap();
        let b = self.beta.lock().unwrap();
        *a + *b
    }

    pub fn backward(&self) -> u32 {
        let b = self.beta.lock().unwrap();
        let a = self.alpha.lock().unwrap();
        *b - *a
    }
}

/// A guard held across a condvar wait that parks on a *different* lock
/// (QL0302): the waiter sleeps holding `stats`, so any notifier that
/// needs `stats` deadlocks.
pub struct Station {
    pub stats: Mutex<u64>,
    pub gate: Mutex<bool>,
    pub ready: Condvar,
}

impl Station {
    pub fn drain(&self) -> u64 {
        let stats = self.stats.lock().unwrap();
        let mut open = self.gate.lock().unwrap();
        while !*open {
            open = self.ready.wait(open).unwrap();
        }
        *stats
    }
}

/// An RAII accounting value whose Drop gives budget back.
pub struct Reservation<'a> {
    ledger: &'a Ledger,
    bytes: u64,
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        self.ledger.reserved.fetch_sub(self.bytes, Ordering::AcqRel);
    }
}

pub struct Ledger {
    reserved: AtomicU64,
    budget: u64,
}

impl Ledger {
    pub fn try_reserve(&self, bytes: u64) -> Option<Reservation<'_>> {
        let prior = self.reserved.fetch_add(bytes, Ordering::AcqRel);
        if prior + bytes > self.budget {
            self.reserved.fetch_sub(bytes, Ordering::AcqRel);
            return None;
        }
        Some(Reservation { ledger: self, bytes })
    }

    /// Leaks the reservation (QL0303): the ledger never gets the bytes
    /// back, so admission slowly starves.
    pub fn leak_one(&self) {
        let r = self.try_reserve(64);
        std::mem::forget(r);
    }
}
