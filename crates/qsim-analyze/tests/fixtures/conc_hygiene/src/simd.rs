//! Intrinsics with no `cfg(target_arch = …)` gate on the `mod`
//! declaration: QL0305. The unsafe block itself is documented so this
//! file adds no QL0304.

pub fn zero() -> i32 {
    // SAFETY: fixture-only; never compiled, let alone executed.
    let v = unsafe { core::arch::x86_64::_mm256_setzero_si256() };
    let _ = v;
    0
}
