//! Seeded hygiene defects: an undocumented unsafe block (QL0304), an
//! intrinsics module without a `target_arch` gate (QL0305), a lock call
//! on an undeclared site (QL0306), and a condvar wait outside a loop
//! (QL0308).

use std::sync::{Condvar, Mutex};

mod simd;

pub struct Holder {
    pub cell: Mutex<u32>,
    pub cv: Condvar,
}

impl Holder {
    pub fn peek(&self) -> u32 {
        let v = self.cell.lock().unwrap();
        // Deliberately undocumented block: QL0304.
        let raw = unsafe { *(&*v as *const u32) };
        raw
    }

    /// `mystery` is not a declared lock site: QL0306.
    pub fn touch(&self) {
        self.mystery.lock();
    }

    /// A wait with no surrounding loop misses spurious wakeups: QL0308.
    pub fn wait_once(&self) {
        let g = self.cell.lock().unwrap();
        let _g = self.cv.wait(g).unwrap();
    }
}
