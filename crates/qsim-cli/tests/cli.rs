//! End-to-end tests of the command-line tools, driving the real binaries
//! the way a user would.

use std::path::PathBuf;
use std::process::{Command, Output};

fn qsim_base() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsim_base"))
}

fn rqc_gen() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rqc_gen"))
}

fn qsim_amplitudes() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsim_amplitudes"))
}

fn tmpfile(name: &str) -> PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!("qsim_cli_test_{}_{name}", std::process::id()));
    p
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn write_bell() -> PathBuf {
    let path = tmpfile("bell");
    std::fs::write(&path, "2\n0 h 0\n1 cnot 0 1\n").expect("write circuit");
    path
}

#[test]
fn qsim_base_runs_bell_circuit() {
    let circuit = write_bell();
    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "hip", "-f", "2"])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("backend:            hip"));
    assert!(text.contains("+0.70710677"), "amplitudes missing:\n{text}");
    assert!(text.contains("simulated time"));
}

#[test]
fn qsim_base_estimate_mode_handles_30_qubits() {
    // Generate the paper's circuit, then estimate without allocating 8 GiB.
    let circuit = tmpfile("q30");
    let gen = rqc_gen()
        .args(["-q", "30", "-d", "14", "-s", "2023", "-o", circuit.to_str().unwrap()])
        .output()
        .expect("run rqc_gen");
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));

    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "hip", "-f", "4", "-e", "-v"])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("qubits:             30"));
    assert!(text.contains("ApplyGateL_Kernel"), "kernel stats expected:\n{text}");
    assert!(text.contains("state memory:       8.000 GiB"));
}

#[test]
fn qsim_base_writes_perfetto_trace() {
    let circuit = write_bell();
    let trace = tmpfile("trace.json");
    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "cuda", "-t", trace.to_str().unwrap()])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let json = std::fs::read_to_string(&trace).expect("trace written");
    let v: serde_json::Value = serde_json::from_str(&json).expect("valid JSON");
    assert!(!v["traceEvents"].as_array().unwrap().is_empty());
}

#[test]
fn qsim_base_rejects_bad_input() {
    let out = qsim_base().args(["-c", "/nonexistent/file"]).output().expect("run");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("cannot read"));

    let bad = tmpfile("bad");
    std::fs::write(&bad, "2\n0 frobnicate 0\n").expect("write");
    let out = qsim_base().args(["-c", bad.to_str().unwrap()]).output().expect("run");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("unknown gate"));

    let out = qsim_base().args(["-x"]).output().expect("run");
    assert!(!out.status.success());
}

#[test]
fn qsim_base_samples_bitstrings() {
    let circuit = write_bell();
    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "hip", "-S", "50", "-s", "3"])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("sampled bitstrings (first 20 of 50)"), "{text}");
    // Bell state: every sampled line is 00 or 11.
    let lines: Vec<&str> = text
        .lines()
        .skip_while(|l| !l.contains("sampled bitstrings"))
        .skip(1)
        .take_while(|l| l.starts_with("  "))
        .collect();
    assert!(!lines.is_empty());
    for l in &lines {
        let bits = l.trim();
        assert!(bits == "00" || bits == "11", "unexpected sample {bits}");
    }
}

#[test]
fn qsim_base_help() {
    let out = qsim_base().arg("-h").output().expect("run");
    assert!(out.status.success());
    assert!(stdout(&out).contains("USAGE"));
}

#[test]
fn rqc_gen_roundtrips_through_qsim_base() {
    let circuit = tmpfile("q8");
    let gen = rqc_gen()
        .args(["-q", "8", "-d", "6", "-s", "1", "-o", circuit.to_str().unwrap()])
        .output()
        .expect("run rqc_gen");
    assert!(gen.status.success());
    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "cpu", "-f", "4", "-n", "2"])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("8 qubits"));
}

#[test]
fn qsim_amplitudes_queries_bitstrings() {
    let circuit = write_bell();
    let queries = tmpfile("queries");
    std::fs::write(&queries, "# bell outputs\n00\n11\n01\n").expect("write queries");
    let out = qsim_amplitudes()
        .args([
            "-c",
            circuit.to_str().unwrap(),
            "-i",
            queries.to_str().unwrap(),
            "-b",
            "custatevec",
        ])
        .output()
        .expect("run qsim_amplitudes");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("00  +0.70710677"), "{text}");
    assert!(text.contains("11  +0.70710677"), "{text}");
    assert!(text.contains("01  +0.00000000"), "{text}");
}

/// Path to a circuit file shipped in the repository's `circuits/`.
fn repo_circuit(name: &str) -> PathBuf {
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop(); // crates/
    p.pop(); // repo root
    p.push("circuits");
    p.push(name);
    p
}

#[test]
fn analyze_passes_bell_circuit() {
    let circuit = write_bell();
    let out = qsim_base().args(["analyze", "-c", circuit.to_str().unwrap()]).output().expect("run");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("no findings"), "{text}");
    assert!(text.contains("result: pass"), "{text}");
}

#[test]
fn analyze_passes_repo_circuits() {
    for name in ["bell", "circuit_q24", "circuit_q30"] {
        let path = repo_circuit(name);
        let out = qsim_base()
            .args(["analyze", "-c", path.to_str().unwrap(), "-f", "4"])
            .output()
            .expect("run");
        assert!(out.status.success(), "{name} failed analysis: {}", stdout(&out));
        let text = stdout(&out);
        assert!(
            text.contains("0 errors, 0 warnings") || text.contains("no findings"),
            "{name}:\n{text}"
        );
    }
}

#[test]
fn analyze_json_output_parses() {
    let circuit = write_bell();
    let out = qsim_base()
        .args(["analyze", "-c", circuit.to_str().unwrap(), "--json"])
        .output()
        .expect("run");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["qubits"], serde_json::json!(2));
    assert_eq!(v["passed"], serde_json::json!(true));
    assert_eq!(v["analysis"]["errors"], serde_json::json!(0));
    assert!(v["analysis"]["findings"].as_array().unwrap().is_empty());
}

#[test]
fn analyze_flags_out_of_range_qubit() {
    let bad = tmpfile("analyze_bad");
    std::fs::write(&bad, "2\n0 h 5\n").expect("write");
    let out =
        qsim_base().args(["analyze", "-c", bad.to_str().unwrap(), "--json"]).output().expect("run");
    assert!(!out.status.success(), "out-of-range qubit must fail analysis");
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["passed"], serde_json::json!(false));
    let findings = v["analysis"]["findings"].as_array().unwrap();
    assert!(
        findings.iter().any(|f| f["code"] == serde_json::json!("QC0002")),
        "expected QC0002 in {findings:?}"
    );
}

#[test]
fn analyze_deny_warnings_policy() {
    let id = tmpfile("analyze_id");
    std::fs::write(&id, "2\n0 id 0\n1 h 0\n").expect("write");
    // Identity gate is a warning: pass by default...
    let out = qsim_base().args(["analyze", "-c", id.to_str().unwrap()]).output().expect("run");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    assert!(stdout(&out).contains("QA0103"), "{}", stdout(&out));
    // ...fail under --deny-warnings.
    let out = qsim_base()
        .args(["analyze", "-c", id.to_str().unwrap(), "--deny-warnings"])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(stdout(&out).contains("result: fail"), "{}", stdout(&out));
}

#[test]
fn max_fused_out_of_range_is_clean_error() {
    let circuit = write_bell();
    for f in ["0", "9"] {
        for prefix in [vec![], vec!["analyze"]] {
            let mut args = prefix.clone();
            args.extend(["-c", circuit.to_str().unwrap(), "-f", f]);
            let out = qsim_base().args(&args).output().expect("run");
            assert!(!out.status.success());
            assert!(stderr(&out).contains("-f expects 1..=6"), "stderr: {}", stderr(&out));
        }
    }
}

#[test]
fn qsim_amplitudes_max_fused_out_of_range_is_clean_error() {
    let circuit = write_bell();
    let queries = tmpfile("range_queries");
    std::fs::write(&queries, "00\n").expect("write queries");
    for f in ["0", "9"] {
        let out = qsim_amplitudes()
            .args(["-c", circuit.to_str().unwrap(), "-i", queries.to_str().unwrap(), "-f", f])
            .output()
            .expect("run");
        assert!(!out.status.success());
        assert!(stderr(&out).contains("-f expects 1..=6"), "stderr: {}", stderr(&out));
    }
}

#[test]
fn fusion_strategy_flag_runs_and_reports() {
    let circuit = tmpfile("q10_fusion");
    let gen = rqc_gen()
        .args(["-q", "10", "-d", "8", "-s", "7", "-o", circuit.to_str().unwrap()])
        .output()
        .expect("run rqc_gen");
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));
    for strategy in ["greedy", "cost", "auto"] {
        let out = qsim_base()
            .args(["-c", circuit.to_str().unwrap(), "-b", "hip", "-f", "4", "--fusion", strategy])
            .output()
            .expect("run qsim_base");
        assert!(out.status.success(), "{strategy}: {}", stderr(&out));
        let text = stdout(&out);
        assert!(text.contains(&format!("via {strategy}")), "{strategy}:\n{text}");
        assert!(text.contains(&format!("fusion strategy:    {strategy}")), "{strategy}:\n{text}");
    }
}

#[test]
fn unknown_fusion_strategy_is_clean_error() {
    let circuit = write_bell();
    for prefix in [vec![], vec!["analyze"]] {
        let mut args = prefix.clone();
        args.extend(["-c", circuit.to_str().unwrap(), "--fusion", "frobnicate"]);
        let out = qsim_base().args(&args).output().expect("run");
        assert!(!out.status.success());
        assert!(
            stderr(&out).contains("unknown fusion strategy 'frobnicate'"),
            "stderr: {}",
            stderr(&out)
        );
    }
}

#[test]
fn json_report_parses_and_carries_fusion_fields() {
    let circuit = tmpfile("q9_json");
    let gen = rqc_gen()
        .args(["-q", "9", "-d", "6", "-s", "11", "-o", circuit.to_str().unwrap()])
        .output()
        .expect("run rqc_gen");
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));
    let out = qsim_base()
        .args(["-c", circuit.to_str().unwrap(), "-b", "hip", "--fusion", "auto", "--json"])
        .output()
        .expect("run qsim_base");
    assert!(out.status.success(), "stderr: {}", stderr(&out));
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["circuit"]["qubits"], serde_json::json!(9));
    let report = &v["report"];
    assert_eq!(report["backend"], serde_json::json!("hip"));
    assert_eq!(report["fusion"]["strategy"], serde_json::json!("auto"));
    assert!(report["fusion"]["predicted_cost_seconds"].as_f64().unwrap() > 0.0);
    assert!(report["fusion"]["compression"].as_f64().unwrap() >= 1.0);
    let hist = report["fusion"]["fused_by_qubit_count"].as_array().unwrap();
    assert_eq!(hist.len(), 7);
    assert!(report["simulated_seconds"].as_f64().unwrap() > 0.0);
    assert!(!report["gate_classes"].as_array().unwrap().is_empty());
    // The amplitudes array is present on a real (non-estimate) run.
    assert_eq!(v["amplitudes"].as_array().unwrap().len(), 8);
}

#[test]
fn analyze_accepts_fusion_strategy_and_backend() {
    let circuit = tmpfile("q8_analyze_fusion");
    let gen = rqc_gen()
        .args(["-q", "8", "-d", "6", "-s", "3", "-o", circuit.to_str().unwrap()])
        .output()
        .expect("run rqc_gen");
    assert!(gen.status.success(), "stderr: {}", stderr(&gen));
    for (strategy, backend) in [("cost", "hip"), ("auto", "cuda"), ("greedy", "cpu")] {
        let out = qsim_base()
            .args([
                "analyze",
                "-c",
                circuit.to_str().unwrap(),
                "-f",
                "4",
                "--fusion",
                strategy,
                "-b",
                backend,
                "--json",
            ])
            .output()
            .expect("run");
        assert!(out.status.success(), "{strategy}/{backend}: {}", stderr(&out));
        let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
        assert_eq!(v["fusion_strategy"], serde_json::json!(strategy));
        assert_eq!(v["backend"], serde_json::json!(backend));
        assert_eq!(v["passed"], serde_json::json!(true));
    }
}

#[test]
fn rqc_gen_rejects_bad_qubit_count() {
    for q in ["1", "99"] {
        let out = rqc_gen().args(["-q", q]).output().expect("run");
        assert!(!out.status.success());
        assert!(stderr(&out).contains("-q expects 2..=36"), "stderr: {}", stderr(&out));
    }
}

#[test]
fn qsim_amplitudes_validates_bit_width() {
    let circuit = write_bell();
    let queries = tmpfile("badbits");
    std::fs::write(&queries, "000\n").expect("write");
    let out = qsim_amplitudes()
        .args(["-c", circuit.to_str().unwrap(), "-i", queries.to_str().unwrap()])
        .output()
        .expect("run");
    assert!(!out.status.success());
    assert!(stderr(&out).contains("has 3 bits"));
}

fn qsim_lint() -> Command {
    Command::new(env!("CARGO_BIN_EXE_qsim_lint"))
}

#[test]
fn qsim_lint_reports_seeded_fixture_defects_as_json() {
    let fixture = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../qsim-analyze/tests/fixtures/conc_fixture");
    let out = qsim_lint()
        .args(["--root", fixture.to_str().unwrap(), "--json", "--deny-warnings"])
        .output()
        .expect("run");
    assert_eq!(out.status.code(), Some(1), "seeded defects must fail the gate");
    let v: serde_json::Value = serde_json::from_str(&stdout(&out)).expect("valid JSON");
    assert_eq!(v["errors"], serde_json::json!(3));
    let codes: Vec<&str> =
        v["findings"].as_array().unwrap().iter().map(|f| f["code"].as_str().unwrap()).collect();
    for code in ["QL0301", "QL0302", "QL0303"] {
        assert!(codes.contains(&code), "missing {code} in {codes:?}");
    }
}

#[test]
fn qsim_lint_passes_the_workspace_and_prints_the_graph() {
    let root = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../..");
    let out = qsim_lint()
        .args(["--root", root.to_str().unwrap(), "--deny-warnings", "--graph"])
        .output()
        .expect("run");
    assert!(out.status.success(), "{}\n{}", stdout(&out), stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("no findings"), "{text}");
    assert!(text.contains("lock sites"), "{text}");
}

#[test]
fn qsim_lint_emits_the_diagnostics_registry() {
    let out = qsim_lint().arg("--emit-diagnostics").output().expect("run");
    assert!(out.status.success());
    let text = stdout(&out);
    for range in ["QC00xx", "QA01xx", "QP02xx", "QL03xx"] {
        assert!(text.contains(range), "missing section {range}");
    }
    assert!(text.contains("| `QL0308` |"), "{text}");
}
