//! Shared command-line plumbing for the qsim binaries.
//!
//! `qsim_base`, its `analyze` subcommand, `qsim_amplitudes` and
//! `qsim_serve` all accept the same `-f` / `-b` / `-p` / `-B` options;
//! this library is the single place their values are parsed and
//! validated, so the accepted ranges and error messages cannot drift
//! between binaries.

pub mod args;
