//! `qsim_serve` — the multi-tenant simulation job service.
//!
//! Binds a TCP listener, prints `listening on <addr>` (so scripts can
//! capture an ephemeral port), and speaks the newline-delimited JSON
//! protocol documented in DESIGN.md §"Service layer" until a `shutdown`
//! verb drains the worker pool.

use std::sync::Arc;

use qsim_serve::{Server, Service, ServiceConfig};

const USAGE: &str = "\
usage: qsim_serve [options]
  --host HOST       bind address (default 127.0.0.1)
  --port PORT       bind port; 0 picks an ephemeral port (default 0)
  --workers N       worker threads (default 4)
  --budget-gib GIB  state-memory admission budget in GiB (default 16)
  --bandwidth-gib GIB/S
                    modeled memory-bandwidth dispatch budget in GiB/s
                    (default 400; caps the aggregate streaming rate of
                    concurrently running jobs)
  --max-batch N     max Batch-class jobs gang-scheduled through one
                    run_batch sweep; 1 disables coalescing (default 16)
  --pool-cap N      max pooled buffers per size bucket (default 8)
  -h, --help        show this help";

struct Args {
    host: String,
    port: u16,
    config: ServiceConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args { host: "127.0.0.1".into(), port: 0, config: ServiceConfig::default() };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "-h" | "--help" => return Err(USAGE.into()),
            "--host" => args.host = take(&mut it, flag)?.clone(),
            "--port" => {
                args.port = take(&mut it, flag)?.parse().map_err(|e| format!("bad --port: {e}"))?;
            }
            "--workers" => {
                let n: usize =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.config.workers = n;
            }
            "--budget-gib" => {
                let gib: u64 =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --budget-gib: {e}"))?;
                args.config.memory_budget_bytes = gib << 30;
            }
            "--bandwidth-gib" => {
                let gib: u64 = take(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("bad --bandwidth-gib: {e}"))?;
                if gib == 0 {
                    return Err("--bandwidth-gib must be at least 1".into());
                }
                args.config.bandwidth_budget_bps = gib << 30;
            }
            "--max-batch" => {
                let n: usize =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --max-batch: {e}"))?;
                if n == 0 {
                    return Err("--max-batch must be at least 1".into());
                }
                args.config.max_batch = n;
            }
            "--pool-cap" => {
                args.config.pool_max_per_bucket =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --pool-cap: {e}"))?;
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn take<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let service = Arc::new(Service::start(args.config));
    let server = match Server::bind(&format!("{}:{}", args.host, args.port), service) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("qsim_serve: bind failed: {e}");
            std::process::exit(1);
        }
    };
    match server.local_addr() {
        Ok(addr) => {
            // Scripts parse this line to learn the ephemeral port; keep
            // the format stable.
            println!("listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("qsim_serve: no local address: {e}");
            std::process::exit(1);
        }
    }
    if let Err(e) = server.serve() {
        eprintln!("qsim_serve: {e}");
        std::process::exit(1);
    }
    println!("drained, exiting");
}
