//! `qsim_serve` — the multi-tenant simulation job service.
//!
//! Binds a TCP listener, prints `listening on <addr>` (so scripts can
//! capture an ephemeral port), and speaks the newline-delimited JSON
//! protocol documented in DESIGN.md §"Service layer" until a `shutdown`
//! verb drains the worker pool.

use std::sync::Arc;

use qsim_serve::{MuxServer, Server, Service, ServiceConfig};

const USAGE: &str = "\
usage: qsim_serve [options]
  --host HOST       bind address (default 127.0.0.1)
  --port PORT       bind port; 0 picks an ephemeral port (default 0)
  --workers N       worker threads (default 4)
  --io-threads N    serve connections from a fixed pool of N multiplexed
                    I/O threads (many nonblocking connections per thread,
                    streamed sample frames); 0 keeps the legacy
                    thread-per-connection front end (default 0)
  --budget-gib GIB  state-memory admission budget in GiB (default 16)
  --cache-budget MIB
                    result-cache budget in MiB, charged against the
                    admission ledger; repeat submissions of an identical
                    job return Done from cache. 0 disables (default 2048)
  --plan-cache-budget MIB
                    fusion-plan cache budget in MiB; 0 disables
                    (default 32)
  --bandwidth-gib GIB/S
                    modeled memory-bandwidth dispatch budget in GiB/s
                    (default 400; caps the aggregate streaming rate of
                    concurrently running jobs)
  --max-batch N     max Batch-class jobs gang-scheduled through one
                    run_batch sweep; 1 disables coalescing (default 16)
  --pool-cap N      max pooled buffers per size bucket (default 8)
  -h, --help        show this help";

struct Args {
    host: String,
    port: u16,
    io_threads: usize,
    config: ServiceConfig,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args =
        Args { host: "127.0.0.1".into(), port: 0, io_threads: 0, config: ServiceConfig::default() };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "-h" | "--help" => return Err(USAGE.into()),
            "--host" => args.host = take(&mut it, flag)?.clone(),
            "--port" => {
                args.port = take(&mut it, flag)?.parse().map_err(|e| format!("bad --port: {e}"))?;
            }
            "--workers" => {
                let n: usize =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --workers: {e}"))?;
                if n == 0 {
                    return Err("--workers must be at least 1".into());
                }
                args.config.workers = n;
            }
            "--io-threads" => {
                args.io_threads =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --io-threads: {e}"))?;
            }
            "--cache-budget" => {
                let mib: u64 =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --cache-budget: {e}"))?;
                args.config.result_cache_budget_bytes = mib << 20;
            }
            "--plan-cache-budget" => {
                let mib: u64 = take(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("bad --plan-cache-budget: {e}"))?;
                args.config.plan_cache_budget_bytes = mib << 20;
            }
            "--budget-gib" => {
                let gib: u64 =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --budget-gib: {e}"))?;
                args.config.memory_budget_bytes = gib << 30;
            }
            "--bandwidth-gib" => {
                let gib: u64 = take(&mut it, flag)?
                    .parse()
                    .map_err(|e| format!("bad --bandwidth-gib: {e}"))?;
                if gib == 0 {
                    return Err("--bandwidth-gib must be at least 1".into());
                }
                args.config.bandwidth_budget_bps = gib << 30;
            }
            "--max-batch" => {
                let n: usize =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --max-batch: {e}"))?;
                if n == 0 {
                    return Err("--max-batch must be at least 1".into());
                }
                args.config.max_batch = n;
            }
            "--pool-cap" => {
                args.config.pool_max_per_bucket =
                    take(&mut it, flag)?.parse().map_err(|e| format!("bad --pool-cap: {e}"))?;
            }
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn take<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    let service = Arc::new(Service::start(args.config));
    let bind_addr = format!("{}:{}", args.host, args.port);
    let serve_result = if args.io_threads > 0 {
        let server = match MuxServer::bind(&bind_addr, service, args.io_threads) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("qsim_serve: bind failed: {e}");
                std::process::exit(1);
            }
        };
        announce(server.local_addr());
        server.serve()
    } else {
        let server = match Server::bind(&bind_addr, service) {
            Ok(server) => server,
            Err(e) => {
                eprintln!("qsim_serve: bind failed: {e}");
                std::process::exit(1);
            }
        };
        announce(server.local_addr());
        server.serve()
    };
    if let Err(e) = serve_result {
        eprintln!("qsim_serve: {e}");
        std::process::exit(1);
    }
    println!("drained, exiting");
}

fn announce(addr: std::io::Result<std::net::SocketAddr>) {
    match addr {
        Ok(addr) => {
            // Scripts parse this line to learn the ephemeral port; keep
            // the format stable.
            println!("listening on {addr}");
            use std::io::Write;
            let _ = std::io::stdout().flush();
        }
        Err(e) => {
            eprintln!("qsim_serve: no local address: {e}");
            std::process::exit(1);
        }
    }
}
