//! `qsim_lint` — the workspace concurrency-lint driver.
//!
//! Runs the `qsim_analyze::concurrency` analyses (lock-order graph,
//! guards held across blocking boundaries, RAII-escape detection,
//! unsafe/ISA hygiene) over a workspace tree and reports `QL03xx`
//! diagnostics. CI runs it with `--deny-warnings` and uploads the
//! `--json` report as an artifact.
//!
//! Exit codes: 0 clean (under the active policy), 1 findings, 2 usage
//! or I/O error.

use std::path::PathBuf;

use qsim_analyze::concurrency::{self, Allowlist};

const USAGE: &str = "\
usage: qsim_lint [options]
  --root DIR        workspace root to analyze (default .)
  --allowlist FILE  allowlist path (default <root>/CONC_ALLOWLIST.txt;
                    a missing file is an empty allowlist)
  --json            print the report as JSON instead of text
  --graph           also print the lock-site/ordering-edge model
  --deny-warnings   exit non-zero on warnings, not just errors
  --emit-diagnostics
                    print the generated DIAGNOSTICS.md (from the rule
                    registry) and exit; CI diffs it against the file
  -h, --help        show this help";

struct Args {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    json: bool,
    graph: bool,
    deny_warnings: bool,
    emit_diagnostics: bool,
}

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        root: PathBuf::from("."),
        allowlist: None,
        json: false,
        graph: false,
        deny_warnings: false,
        emit_diagnostics: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        match flag.as_str() {
            "-h" | "--help" => return Err(USAGE.into()),
            "--root" => args.root = PathBuf::from(take(&mut it, flag)?),
            "--allowlist" => args.allowlist = Some(PathBuf::from(take(&mut it, flag)?)),
            "--json" => args.json = true,
            "--graph" => args.graph = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--emit-diagnostics" => args.emit_diagnostics = true,
            other => return Err(format!("unknown argument '{other}'\n{USAGE}")),
        }
    }
    Ok(args)
}

fn take<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let args = match parse_args(&argv) {
        Ok(args) => args,
        Err(message) => {
            eprintln!("{message}");
            std::process::exit(2);
        }
    };

    if args.emit_diagnostics {
        print!("{}", qsim_analyze::registry::diagnostics_markdown());
        return;
    }

    let allowlist_path =
        args.allowlist.clone().unwrap_or_else(|| args.root.join("CONC_ALLOWLIST.txt"));
    let allowlist = match std::fs::read_to_string(&allowlist_path) {
        Ok(text) => Allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => Allowlist::default(),
        Err(e) => {
            eprintln!("qsim_lint: cannot read {}: {e}", allowlist_path.display());
            std::process::exit(2);
        }
    };

    let report = match concurrency::analyze_workspace(&args.root, &allowlist) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("qsim_lint: cannot analyze {}: {e}", args.root.display());
            std::process::exit(2);
        }
    };

    if args.json {
        println!("{}", report.to_json_string());
    } else {
        println!("{}", report.render());
    }
    if args.graph {
        println!("{}", report.render_graph());
    }
    std::process::exit(if report.passes(args.deny_warnings) { 0 } else { 1 });
}
