//! `rqc_gen` — generate Random Quantum Circuit files in qsim's text
//! format, the stand-in for the `circuit_q30` input file the paper pulls
//! from the qsim repository.
//!
//! ```text
//! rqc_gen -q 30 -d 14 -s 2023 -o circuits/circuit_q30
//! ```

use std::process::ExitCode;

use qsim_circuit::parser::write_circuit;
use qsim_circuit::{generate_rqc, RqcOptions};

const USAGE: &str = "\
rqc_gen — write a supremacy-style Random Quantum Circuit in qsim's format

USAGE:
    rqc_gen [-q QUBITS] [-d CYCLES] [-s SEED] [-o FILE]

OPTIONS:
    -q N     number of qubits, arranged on a near-square grid (default 30)
    -d N     number of cycles (default 14, the paper's depth)
    -s SEED  PRNG seed (default 2023)
    -o FILE  output path (default: stdout)
    -h       this help
";

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut qubits = 30usize;
    let mut cycles = 14usize;
    let mut seed = 2023u64;
    let mut out: Option<String> = None;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let value = match flag.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => match it.next() {
                Some(v) => v,
                None => {
                    eprintln!("error: missing value for {flag}\n\n{USAGE}");
                    return ExitCode::FAILURE;
                }
            },
        };
        let ok = match flag.as_str() {
            "-q" => value.parse().map(|v| qubits = v).is_ok(),
            "-d" => value.parse().map(|v| cycles = v).is_ok(),
            "-s" => value.parse().map(|v| seed = v).is_ok(),
            "-o" => {
                out = Some(value.clone());
                true
            }
            _ => {
                eprintln!("error: unknown option '{flag}'\n\n{USAGE}");
                return ExitCode::FAILURE;
            }
        };
        if !ok {
            eprintln!("error: bad value '{value}' for {flag}");
            return ExitCode::FAILURE;
        }
    }

    // Validate here so a bad -q is a clean CLI error, not a library panic.
    if !(2..=qsim_core::statevec::MAX_QUBITS).contains(&qubits) {
        eprintln!("error: -q expects 2..={}, got {qubits}", qsim_core::statevec::MAX_QUBITS);
        return ExitCode::FAILURE;
    }

    let circuit = generate_rqc(&RqcOptions::for_qubits(qubits, cycles, seed));
    let text = write_circuit(&circuit);
    match out {
        Some(path) => {
            if let Err(e) = std::fs::write(&path, text) {
                eprintln!("error: cannot write {path}: {e}");
                return ExitCode::FAILURE;
            }
            let (one, two, _) = circuit.gate_counts();
            eprintln!(
                "wrote {path}: {} qubits, {} single-qubit + {} two-qubit gates",
                circuit.num_qubits, one, two
            );
        }
        None => print!("{text}"),
    }
    ExitCode::SUCCESS
}
