//! `qsim_amplitudes` — mirror of qsim's amplitude-query tool: run a
//! circuit and print the amplitudes of specific output bitstrings
//! (read from a file, one binary string per line, most-significant qubit
//! first, as in qsim's input convention).
//!
//! ```text
//! qsim_amplitudes -c circuits/circuit_q24 -i bitstrings.txt -b hip -f 4
//! ```

use std::process::ExitCode;

use qsim_backends::{Backend, Flavor, RunOptions, SimBackend};
use qsim_circuit::parser::parse_circuit;
use qsim_cli::args::{parse_backend, parse_max_fused};
use qsim_fusion::fuse;

const USAGE: &str = "\
qsim_amplitudes — compute amplitudes of selected output bitstrings

USAGE:
    qsim_amplitudes -c <circuit-file> -i <bitstring-file> [options]

OPTIONS:
    -c FILE    circuit file in qsim text format (required)
    -i FILE    bitstrings to query, one per line, '0'/'1' chars with the
               most-significant qubit first (required)
    -f N       maximum number of fused gate qubits, 1..=6 (default 2)
    -b NAME    backend: cpu | cuda | custatevec | hip (default cpu)
    -h         this help
";

fn parse_bitstrings(text: &str, num_qubits: usize) -> Result<Vec<u64>, String> {
    let mut out = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line.len() != num_qubits {
            return Err(format!(
                "line {}: bitstring '{line}' has {} bits, circuit has {num_qubits} qubits",
                lineno + 1,
                line.len()
            ));
        }
        let mut value = 0u64;
        // Most-significant qubit first: leftmost char is the top qubit.
        for ch in line.chars() {
            value = (value << 1)
                | match ch {
                    '0' => 0,
                    '1' => 1,
                    other => return Err(format!("line {}: bad bit '{other}'", lineno + 1)),
                };
        }
        out.push(value);
    }
    if out.is_empty() {
        return Err("no bitstrings in input file".into());
    }
    Ok(out)
}

fn run() -> Result<(), String> {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut circuit_file = String::new();
    let mut bitstring_file = String::new();
    let mut max_fused = 2usize;
    let mut backend = Flavor::CpuAvx;

    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        if flag == "-h" || flag == "--help" {
            print!("{USAGE}");
            return Ok(());
        }
        let value = it.next().ok_or_else(|| format!("missing value for {flag}"))?;
        match flag.as_str() {
            "-c" => circuit_file = value.clone(),
            "-i" => bitstring_file = value.clone(),
            "-f" => max_fused = parse_max_fused(value)?,
            "-b" => backend = parse_backend(value)?,
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if circuit_file.is_empty() || bitstring_file.is_empty() {
        return Err(format!("both -c and -i are required\n\n{USAGE}"));
    }

    let circuit_text = std::fs::read_to_string(&circuit_file)
        .map_err(|e| format!("cannot read {circuit_file}: {e}"))?;
    let circuit = parse_circuit(&circuit_text).map_err(|e| format!("parse error: {e}"))?;
    let queries_text = std::fs::read_to_string(&bitstring_file)
        .map_err(|e| format!("cannot read {bitstring_file}: {e}"))?;
    let queries = parse_bitstrings(&queries_text, circuit.num_qubits)?;

    let fused = fuse(&circuit, max_fused);
    let (state, report) = SimBackend::new(backend)
        .run_f32(&fused, &RunOptions::default())
        .map_err(|e| e.to_string())?;

    eprintln!(
        "# {} qubits, {} fused passes on {} — modeled {:.4} s",
        circuit.num_qubits, report.fused_gates, report.device, report.simulated_seconds
    );
    for q in queries {
        let a = state.amplitude(q as usize);
        let bits: String = (0..circuit.num_qubits)
            .rev()
            .map(|b| if (q >> b) & 1 == 1 { '1' } else { '0' })
            .collect();
        println!("{bits}  {:+.8}  {:+.8}", a.re, a.im);
    }
    Ok(())
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
