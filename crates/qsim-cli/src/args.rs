//! Parsers for the option values shared by every qsim binary.

use qsim_backends::Flavor;
use qsim_core::kernels::MAX_GATE_QUBITS;
use qsim_core::types::Precision;
use qsim_distributed::interconnect::Topology;
use qsim_distributed::LinkSpec;

/// Parse a `-f` value: the maximum number of fused gate qubits,
/// validated to `1..=MAX_GATE_QUBITS`.
pub fn parse_max_fused(value: &str) -> Result<usize, String> {
    let max_fused: usize = value.parse().map_err(|_| "-f expects an integer".to_string())?;
    if (1..=MAX_GATE_QUBITS).contains(&max_fused) {
        Ok(max_fused)
    } else {
        Err(format!("-f expects 1..={MAX_GATE_QUBITS}, got {max_fused}"))
    }
}

/// Parse a `-b` value: a backend flavor name (see [`Flavor::NAMES`]).
pub fn parse_backend(value: &str) -> Result<Flavor, String> {
    value.parse()
}

/// Parse a `-p` value: `single` or `double`.
pub fn parse_precision(value: &str) -> Result<Precision, String> {
    value.parse()
}

/// Parse a `-B` value: a cache-blocked sweep block size in amplitudes,
/// which must be a power of two no smaller than 2.
pub fn parse_sweep_block(value: &str) -> Result<usize, String> {
    let block: usize = value.parse().map_err(|_| "-B expects an integer".to_string())?;
    if block.is_power_of_two() && block >= 2 {
        Ok(block)
    } else {
        Err(format!("-B expects a power of two >= 2, got {block}"))
    }
}

/// Parse a `--devices` value: the number of modeled devices to shard the
/// state across, which must be a power of two in `1..=64` (1 means the
/// ordinary single-device path).
pub fn parse_devices(value: &str) -> Result<usize, String> {
    let devices: usize = value.parse().map_err(|_| "--devices expects an integer".to_string())?;
    if devices.is_power_of_two() && devices <= 64 {
        Ok(devices)
    } else {
        Err(format!("--devices expects a power of two in 1..=64, got {devices}"))
    }
}

/// Parse a `--topology` value: the modeled interconnect joining the
/// devices of a `--devices` run.
///
/// * `in-package` — uniform Infinity Fabric between GCDs of one package
/// * `node` — uniform cross-package Infinity Fabric
/// * `nvlink` — uniform NVLink 3 (the CUDA flavors' fabric)
/// * `frontier` — the two-level in-package/cross-package hierarchy of a
///   Frontier-style node (default for sharded runs)
pub fn parse_topology(value: &str) -> Result<Topology, String> {
    match value {
        "in-package" => Ok(Topology::Uniform(LinkSpec::infinity_fabric_in_package())),
        "node" => Ok(Topology::Uniform(LinkSpec::infinity_fabric_node())),
        "nvlink" => Ok(Topology::Uniform(LinkSpec::nvlink3())),
        "frontier" => Ok(Topology::frontier_node()),
        other => Err(format!(
            "unknown topology '{other}' (expected in-package | node | nvlink | frontier)"
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_fused_range() {
        assert_eq!(parse_max_fused("1"), Ok(1));
        assert_eq!(parse_max_fused("6"), Ok(MAX_GATE_QUBITS));
        assert!(parse_max_fused("0").unwrap_err().contains("1..="));
        assert!(parse_max_fused("7").unwrap_err().contains("got 7"));
        assert!(parse_max_fused("four").unwrap_err().contains("integer"));
    }

    #[test]
    fn backend_names() {
        assert_eq!(parse_backend("hip"), Ok(Flavor::Hip));
        assert_eq!(parse_backend("cpu"), Ok(Flavor::CpuAvx));
        assert!(parse_backend("opencl").unwrap_err().contains("unknown backend"));
    }

    #[test]
    fn precision_names() {
        assert_eq!(parse_precision("single"), Ok(Precision::Single));
        assert_eq!(parse_precision("double"), Ok(Precision::Double));
        assert!(parse_precision("half").unwrap_err().contains("unknown precision"));
    }

    #[test]
    fn devices_power_of_two_capped() {
        assert_eq!(parse_devices("1"), Ok(1));
        assert_eq!(parse_devices("8"), Ok(8));
        assert_eq!(parse_devices("64"), Ok(64));
        assert!(parse_devices("0").unwrap_err().contains("power of two"));
        assert!(parse_devices("3").unwrap_err().contains("got 3"));
        assert!(parse_devices("128").unwrap_err().contains("1..=64"));
        assert!(parse_devices("two").unwrap_err().contains("integer"));
    }

    #[test]
    fn topology_names() {
        assert!(matches!(parse_topology("frontier"), Ok(Topology::TwoLevel { .. })));
        assert!(matches!(parse_topology("in-package"), Ok(Topology::Uniform(_))));
        assert!(matches!(parse_topology("node"), Ok(Topology::Uniform(_))));
        assert!(matches!(parse_topology("nvlink"), Ok(Topology::Uniform(_))));
        assert!(parse_topology("mesh").unwrap_err().contains("unknown topology"));
    }

    #[test]
    fn sweep_block_power_of_two() {
        assert_eq!(parse_sweep_block("65536"), Ok(65536));
        assert_eq!(parse_sweep_block("2"), Ok(2));
        assert!(parse_sweep_block("1").unwrap_err().contains("power of two"));
        assert!(parse_sweep_block("100").unwrap_err().contains("power of two"));
    }
}
