//! Parsers for the option values shared by every qsim binary.

use qsim_backends::Flavor;
use qsim_core::kernels::MAX_GATE_QUBITS;
use qsim_core::types::Precision;

/// Parse a `-f` value: the maximum number of fused gate qubits,
/// validated to `1..=MAX_GATE_QUBITS`.
pub fn parse_max_fused(value: &str) -> Result<usize, String> {
    let max_fused: usize = value.parse().map_err(|_| "-f expects an integer".to_string())?;
    if (1..=MAX_GATE_QUBITS).contains(&max_fused) {
        Ok(max_fused)
    } else {
        Err(format!("-f expects 1..={MAX_GATE_QUBITS}, got {max_fused}"))
    }
}

/// Parse a `-b` value: a backend flavor name (see [`Flavor::NAMES`]).
pub fn parse_backend(value: &str) -> Result<Flavor, String> {
    value.parse()
}

/// Parse a `-p` value: `single` or `double`.
pub fn parse_precision(value: &str) -> Result<Precision, String> {
    value.parse()
}

/// Parse a `-B` value: a cache-blocked sweep block size in amplitudes,
/// which must be a power of two no smaller than 2.
pub fn parse_sweep_block(value: &str) -> Result<usize, String> {
    let block: usize = value.parse().map_err(|_| "-B expects an integer".to_string())?;
    if block.is_power_of_two() && block >= 2 {
        Ok(block)
    } else {
        Err(format!("-B expects a power of two >= 2, got {block}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn max_fused_range() {
        assert_eq!(parse_max_fused("1"), Ok(1));
        assert_eq!(parse_max_fused("6"), Ok(MAX_GATE_QUBITS));
        assert!(parse_max_fused("0").unwrap_err().contains("1..="));
        assert!(parse_max_fused("7").unwrap_err().contains("got 7"));
        assert!(parse_max_fused("four").unwrap_err().contains("integer"));
    }

    #[test]
    fn backend_names() {
        assert_eq!(parse_backend("hip"), Ok(Flavor::Hip));
        assert_eq!(parse_backend("cpu"), Ok(Flavor::CpuAvx));
        assert!(parse_backend("opencl").unwrap_err().contains("unknown backend"));
    }

    #[test]
    fn precision_names() {
        assert_eq!(parse_precision("single"), Ok(Precision::Single));
        assert_eq!(parse_precision("double"), Ok(Precision::Double));
        assert!(parse_precision("half").unwrap_err().contains("unknown precision"));
    }

    #[test]
    fn sweep_block_power_of_two() {
        assert_eq!(parse_sweep_block("65536"), Ok(65536));
        assert_eq!(parse_sweep_block("2"), Ok(2));
        assert!(parse_sweep_block("1").unwrap_err().contains("power of two"));
        assert!(parse_sweep_block("100").unwrap_err().contains("power of two"));
    }
}
