//! `qsim_base` — the command-line simulator app, mirroring qsim's
//! `qsim_base_cuda.cu → qsim_base_hip.cpp` program from the paper's §3:
//! reads a circuit file in qsim's text format, runs it on a chosen
//! backend with a chosen maximum fused-gate size and precision, and
//! prints amplitudes plus timing.
//!
//! ```text
//! qsim_base -c circuits/circuit_q24 -b hip -f 4 -p single -t trace.json
//! ```

use std::process::ExitCode;
use std::sync::Arc;

use qsim_analyze::Analyzer;
use qsim_backends::{
    Flavor, FusionStrategy, PlanOptions, RunOptions, RunReport, SimBackend, SweepConfig,
};
use qsim_circuit::parser::{parse_circuit, parse_circuit_unchecked};
use qsim_cli::args::{
    parse_backend, parse_devices, parse_max_fused, parse_precision, parse_sweep_block,
    parse_topology,
};
use qsim_core::types::Precision;
use qsim_distributed::interconnect::Topology;
use qsim_distributed::MultiGcdBackend;
use qsim_trace::{Profiler, TraceStats};
use serde_json::json;

struct Args {
    circuit_file: String,
    max_fused: usize,
    strategy: FusionStrategy,
    backend: Flavor,
    precision: Precision,
    seed: u64,
    trace_file: Option<String>,
    num_amplitudes: usize,
    sample_count: usize,
    estimate_only: bool,
    verbose: bool,
    json: bool,
    sweep_block: Option<usize>,
    no_sweep: bool,
    no_simd: bool,
    devices: usize,
    topology: Option<Topology>,
}

const USAGE: &str = "\
qsim_base — state-vector circuit simulator on modeled CPU/GPU backends

USAGE:
    qsim_base -c <circuit-file> [options]
    qsim_base analyze -c <circuit-file> [options]   (see `analyze -h`)

OPTIONS:
    -c FILE    circuit file in qsim text format (required)
    -f N       maximum number of fused gate qubits, 1..=6 (default 2)
    --fusion NAME
               fusion strategy: greedy merges into the latest legal slot;
               cost scores each merge with the active backend's cost
               model; auto additionally sweeps fusion budgets 2..=6 and
               picks the cheapest, ignoring -f (default greedy)
    -b NAME    backend: cpu | cuda | custatevec | hip (default cpu)
    -p PREC    precision: single | double (default single)
    -s SEED    seed for measurement gates (default 0)
    -t FILE    write a Perfetto/Chrome trace JSON to FILE
    -n N       print the first N amplitudes (default 8)
    -S N       sample N bitstrings from the final state (SampleKernel)
    -e         estimate only: model the timing without computing
               amplitudes (permits the paper's 30-qubit runs anywhere)
    -B N       cache-blocked sweep block size in amplitudes, a power of
               two (cpu backend; default 65536)
    --no-sweep disable the cache-blocked sweep: one pass per fused gate
    --no-simd  disable the AVX2/AVX-512 lane kernels: scalar host kernels
               only (equivalent to QSIM_NO_SIMD=1 in the environment)
    --devices N
               shard the state across N modeled devices (a power of two,
               1..=64; default 1 = single device). Gates on global qubits
               run via scheduled pairwise shard exchanges over the fabric,
               overlapped with the local kernel sweep
    --topology NAME
               fabric joining a --devices run: in-package | node |
               nvlink | frontier (default: the backend's native uniform
               link — NVLink for cuda/custatevec, Infinity Fabric else)
    --json     print the run report as a JSON document instead of text
    -v         print per-kernel statistics
    -h         this help
";

fn parse_args(argv: &[String]) -> Result<Args, String> {
    let mut args = Args {
        circuit_file: String::new(),
        max_fused: 2,
        strategy: FusionStrategy::Greedy,
        backend: Flavor::CpuAvx,
        precision: Precision::Single,
        seed: 0,
        trace_file: None,
        num_amplitudes: 8,
        sample_count: 0,
        estimate_only: false,
        verbose: false,
        json: false,
        sweep_block: None,
        no_sweep: false,
        no_simd: false,
        devices: 1,
        topology: None,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "-c" => args.circuit_file = value("-c")?,
            "-f" => args.max_fused = parse_max_fused(&value("-f")?)?,
            "--fusion" => args.strategy = value("--fusion")?.parse()?,
            "-b" => args.backend = parse_backend(&value("-b")?)?,
            "-p" => args.precision = parse_precision(&value("-p")?)?,
            "-s" => {
                args.seed =
                    value("-s")?.parse().map_err(|_| "-s expects an integer".to_string())?;
            }
            "-t" => args.trace_file = Some(value("-t")?),
            "-n" => {
                args.num_amplitudes =
                    value("-n")?.parse().map_err(|_| "-n expects an integer".to_string())?;
            }
            "-S" => {
                args.sample_count =
                    value("-S")?.parse().map_err(|_| "-S expects an integer".to_string())?;
            }
            "-e" => args.estimate_only = true,
            "-B" => args.sweep_block = Some(parse_sweep_block(&value("-B")?)?),
            "--no-sweep" => args.no_sweep = true,
            "--no-simd" => args.no_simd = true,
            "--devices" => args.devices = parse_devices(&value("--devices")?)?,
            "--topology" => args.topology = Some(parse_topology(&value("--topology")?)?),
            "--json" => args.json = true,
            "-v" => args.verbose = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if args.circuit_file.is_empty() {
        return Err("a circuit file is required (-c FILE)".into());
    }
    if args.devices > 1 && args.trace_file.is_some() {
        return Err("-t tracing is not supported with --devices > 1".into());
    }
    Ok(args)
}

fn print_report(report: &RunReport, verbose: bool, profiler: Option<&Profiler>) {
    println!("backend:            {} ({})", report.backend, report.device);
    println!("host SIMD:          {} ({} lane-Low gates)", report.isa, report.lane_low_gates());
    println!("precision:          {}", report.precision);
    println!("qubits:             {}", report.num_qubits);
    println!("max fused qubits:   {}", report.max_fused_qubits);
    println!(
        "fusion strategy:    {} (predicted {:.6} s)",
        report.fusion_strategy, report.predicted_cost_seconds
    );
    println!("fused gate passes:  {}", report.fused_gates);
    let widths: Vec<String> = report
        .fusion_stats
        .fused_by_qubit_count
        .iter()
        .enumerate()
        .filter(|&(_, &c)| c > 0)
        .map(|(w, c)| format!("{w}q:{c}"))
        .collect();
    println!(
        "fused widths:       {} (compression {:.2}x)",
        widths.join(" "),
        report.fusion_stats.compression()
    );
    println!(
        "state passes:       {} ({} saved by cache-blocked sweep)",
        report.state_passes,
        report.passes_saved()
    );
    println!("state memory:       {:.3} GiB", report.state_bytes as f64 / (1u64 << 30) as f64);
    println!("simulated time:     {:.6} s (device model)", report.simulated_seconds);
    println!(
        "  of which fusion:  {:.6} s ({:.2} %)",
        report.fusion_seconds,
        100.0 * report.fusion_fraction()
    );
    println!("host wall time:     {:.6} s", report.wall_seconds);
    for w in &report.analysis_warnings {
        println!("analysis warning:   {w}");
    }
    for (qubits, outcome) in &report.measurements {
        println!("measured {qubits:?} -> {outcome:#b}");
    }
    if !report.samples.is_empty() {
        println!("\nsampled bitstrings (first 20 of {}):", report.samples.len());
        for s in report.samples.iter().take(20) {
            println!("  {s:0width$b}", width = report.num_qubits);
        }
    }
    if verbose {
        if !report.gate_class_counts.is_empty() {
            println!("\ngate classes (GPU kernel / CPU lane):");
            for c in &report.gate_class_counts {
                println!("  {:<6?} / {:<6?} {:>6} gates", c.gpu_kernel, c.cpu_lane, c.count);
            }
        }
        if let Some(p) = profiler {
            println!("\nper-kernel statistics (simulated):");
            print!("{}", TraceStats::from_spans(&p.spans()).table());
        } else {
            println!("\nper-kernel launch totals:");
            for k in &report.kernels {
                println!("  {:<28} {:>6} calls {:>14.1} us", k.name, k.count, k.time_us);
            }
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    let text = std::fs::read_to_string(&args.circuit_file)
        .map_err(|e| format!("cannot read {}: {e}", args.circuit_file))?;
    let circuit = parse_circuit(&text).map_err(|e| format!("parse error: {e}"))?;
    let (one, two, meas) = circuit.gate_counts();
    if !args.json {
        println!(
            "circuit: {} qubits, {} gates ({} single-qubit, {} two-qubit, {} measurement)",
            circuit.num_qubits,
            circuit.num_gates(),
            one,
            two,
            meas
        );
    }

    let profiler = args.trace_file.as_ref().map(|_| Arc::new(Profiler::new()));
    let mut backend = match &profiler {
        Some(p) => SimBackend::with_trace(args.backend, p.clone() as Arc<dyn gpu_model::TraceSink>),
        None => SimBackend::new(args.backend),
    };
    // Sweep and SIMD configuration come before planning: the CPU cost
    // model prices block locality and lane classes from the same settings
    // the run will execute under.
    if args.no_sweep {
        backend.set_sweep_config(SweepConfig::disabled());
    } else if let Some(block) = args.sweep_block {
        backend.set_sweep_config(SweepConfig::with_block_amps(block));
    }
    if args.no_simd {
        qsim_core::simd::set_simd_enabled(false);
    }
    // A --devices run plans and executes through the sharded multi-GCD
    // backend: its cost model prices the fabric exchanges, so the fusion
    // planner (notably --fusion auto) sees the distributed config space.
    let dist = (args.devices > 1).then(|| match args.topology {
        Some(topology) => MultiGcdBackend::with_topology(args.backend, args.devices, topology),
        None => MultiGcdBackend::new(args.backend, args.devices),
    });

    let plan_start = std::time::Instant::now();
    let plan_opts = PlanOptions { strategy: args.strategy, max_fused_qubits: args.max_fused };
    let plan = match &dist {
        Some(d) => d.plan_circuit(&circuit, &plan_opts, args.precision),
        None => backend.plan_circuit(&circuit, &plan_opts, args.precision),
    };
    let stats = plan.fused.stats();
    if !args.json {
        println!(
            "fusion:  {} passes from {} gates via {} (compression {:.2}x, predicted {:.6} s, host wall {:.3} ms)",
            stats.fused_gates,
            stats.source_gates,
            plan.strategy.label(),
            stats.compression(),
            plan.predicted_cost_seconds,
            plan_start.elapsed().as_secs_f64() * 1e3
        );
    }
    let opts = RunOptions { seed: args.seed, sample_count: args.sample_count };

    // (report, first-N amplitudes when computed)
    let (report, amplitudes): (RunReport, Option<Vec<(f64, f64)>>) = if args.estimate_only {
        let report = match &dist {
            Some(d) => d.estimate_plan(&plan, args.precision).map_err(|e| e.to_string())?,
            None => backend.estimate_plan(&plan, args.precision).map_err(|e| e.to_string())?,
        };
        (report, None)
    } else {
        match args.precision {
            Precision::Single => {
                let (state, report) = match &dist {
                    Some(d) => d.run_plan::<f32>(&plan, &opts).map_err(|e| e.to_string())?,
                    None => backend.run_plan::<f32>(&plan, &opts).map_err(|e| e.to_string())?,
                };
                let amps = (0..args.num_amplitudes.min(state.len()))
                    .map(|i| {
                        let a = state.amplitude(i);
                        (a.re as f64, a.im as f64)
                    })
                    .collect();
                (report, Some(amps))
            }
            Precision::Double => {
                let (state, report) = match &dist {
                    Some(d) => d.run_plan::<f64>(&plan, &opts).map_err(|e| e.to_string())?,
                    None => backend.run_plan::<f64>(&plan, &opts).map_err(|e| e.to_string())?,
                };
                let amps = (0..args.num_amplitudes.min(state.len()))
                    .map(|i| {
                        let a = state.amplitude(i);
                        (a.re, a.im)
                    })
                    .collect();
                (report, Some(amps))
            }
        }
    };

    if args.json {
        let amps_json: Option<Vec<serde_json::Value>> = amplitudes
            .as_ref()
            .map(|amps| amps.iter().map(|&(re, im)| json!([(re), (im)])).collect());
        let doc = json!({
            "circuit": {
                "file": (args.circuit_file.as_str()),
                "qubits": (circuit.num_qubits),
                "gates": (circuit.num_gates()),
            },
            "report": (report.to_json()),
            "amplitudes": (amps_json),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("report JSON serializes"));
    } else {
        print_report(&report, args.verbose, profiler.as_deref());
        if let Some(amps) = &amplitudes {
            println!("\nfirst {} amplitudes:", amps.len());
            let digits = if args.precision == Precision::Double { 16 } else { 8 };
            for (i, (re, im)) in amps.iter().enumerate() {
                println!("{i:>6}  {re:+.digits$}  {im:+.digits$}");
            }
        }
    }

    if let (Some(path), Some(p)) = (&args.trace_file, &profiler) {
        let json = qsim_trace::perfetto::to_json(&p.spans());
        std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))?;
        if !args.json {
            println!("\ntrace written to {path} (load at https://ui.perfetto.dev)");
        }
    }
    Ok(())
}

struct AnalyzeArgs {
    circuit_file: String,
    max_fused: usize,
    strategy: FusionStrategy,
    backend: Flavor,
    json: bool,
    deny_warnings: bool,
    sweep_block: Option<usize>,
    no_sweep: bool,
}

const ANALYZE_USAGE: &str = "\
qsim_base analyze — lint a circuit file and its fusion plan without running it

USAGE:
    qsim_base analyze -c <circuit-file> [options]

Checks the circuit structurally (QC00xx), semantically (QA01xx: unitarity,
identity gates, gates after measurement) and lints the fused execution plan
(QP02xx: shape, unitarity of fused products, sweep accounting, small-circuit
state-vector equivalence). Exit code 0 when the circuit passes.

OPTIONS:
    -c FILE          circuit file in qsim text format (required)
    -f N             maximum number of fused gate qubits, 1..=6 (default 2)
    --fusion NAME    fusion strategy to lint: greedy | cost | auto
                     (default greedy; cost/auto price merges with the
                     -b backend's cost model)
    -b NAME          backend whose cost model prices cost/auto plans:
                     cpu | cuda | custatevec | hip (default cpu)
    --json           print the report as JSON instead of human-readable text
    --deny-warnings  nonzero exit code on warnings, not just errors
    -B N             cache-blocked sweep block size in amplitudes, a power
                     of two (affects the sweep-accounting lints)
    --no-sweep       lint the plan with the cache-blocked sweep disabled
    -h               this help
";

fn parse_analyze_args(argv: &[String]) -> Result<AnalyzeArgs, String> {
    let mut args = AnalyzeArgs {
        circuit_file: String::new(),
        max_fused: 2,
        strategy: FusionStrategy::Greedy,
        backend: Flavor::CpuAvx,
        json: false,
        deny_warnings: false,
        sweep_block: None,
        no_sweep: false,
    };
    let mut it = argv.iter();
    while let Some(flag) = it.next() {
        let mut value =
            |name: &str| it.next().cloned().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "-c" => args.circuit_file = value("-c")?,
            "-f" => args.max_fused = parse_max_fused(&value("-f")?)?,
            "--fusion" => args.strategy = value("--fusion")?.parse()?,
            "-b" => args.backend = parse_backend(&value("-b")?)?,
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "-B" => args.sweep_block = Some(parse_sweep_block(&value("-B")?)?),
            "--no-sweep" => args.no_sweep = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown option '{other}'")),
        }
    }
    if args.circuit_file.is_empty() {
        return Err("a circuit file is required (-c FILE)".into());
    }
    Ok(args)
}

/// `analyze` subcommand: parse without the early structural bail-out so
/// the lint engine reports *every* finding, run the full rule set, and
/// report. Returns whether the circuit passed under the warning policy.
fn run_analyze(args: &AnalyzeArgs) -> Result<bool, String> {
    let text = std::fs::read_to_string(&args.circuit_file)
        .map_err(|e| format!("cannot read {}: {e}", args.circuit_file))?;
    let circuit = parse_circuit_unchecked(&text).map_err(|e| format!("parse error: {e}"))?;

    let sweep = if args.no_sweep {
        SweepConfig::disabled()
    } else if let Some(block) = args.sweep_block {
        SweepConfig::with_block_amps(block)
    } else {
        SweepConfig::default()
    };
    // Plan with the requested strategy, but only once the circuit itself
    // is clean — fusing a structurally invalid circuit is undefined, so a
    // bad circuit reports its own findings and skips plan linting (the
    // same short-circuit as [`Analyzer::analyze`]).
    let mut backend = SimBackend::new(args.backend);
    backend.set_sweep_config(sweep);
    let analyzer = Analyzer::new();
    let mut report = analyzer.analyze_circuit(&circuit);
    if !report.has_errors() {
        let plan_opts = PlanOptions { strategy: args.strategy, max_fused_qubits: args.max_fused };
        let plan = backend.plan_circuit(&circuit, &plan_opts, Precision::Single);
        report.extend(analyzer.analyze_plan(&plan.fused, Some(&circuit), sweep));
    }
    let passed = report.passes(args.deny_warnings);

    if args.json {
        let doc = json!({
            "file": (args.circuit_file.as_str()),
            "qubits": (circuit.num_qubits),
            "gates": (circuit.num_gates()),
            "max_fused_qubits": (args.max_fused),
            "fusion_strategy": (args.strategy.label()),
            "backend": (args.backend.label()),
            "passed": (passed),
            "analysis": (report.to_json()),
        });
        println!("{}", serde_json::to_string_pretty(&doc).expect("analyze JSON serializes"));
    } else {
        let (one, two, meas) = circuit.gate_counts();
        println!(
            "circuit: {} qubits, {} gates ({} single-qubit, {} two-qubit, {} measurement)",
            circuit.num_qubits,
            circuit.num_gates(),
            one,
            two,
            meas
        );
        println!("{}", report.render());
        println!("result: {}", if passed { "pass" } else { "fail" });
    }
    Ok(passed)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("analyze") {
        return match parse_analyze_args(&argv[1..]) {
            Ok(args) => match run_analyze(&args) {
                Ok(true) => ExitCode::SUCCESS,
                Ok(false) => ExitCode::FAILURE,
                Err(e) => {
                    eprintln!("error: {e}");
                    ExitCode::FAILURE
                }
            },
            Err(msg) => {
                if msg.is_empty() {
                    print!("{ANALYZE_USAGE}");
                    ExitCode::SUCCESS
                } else {
                    eprintln!("error: {msg}\n\n{ANALYZE_USAGE}");
                    ExitCode::FAILURE
                }
            }
        };
    }
    match parse_args(&argv) {
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(e) => {
                eprintln!("error: {e}");
                ExitCode::FAILURE
            }
        },
        Err(msg) => {
            if msg.is_empty() {
                print!("{USAGE}");
                ExitCode::SUCCESS
            } else {
                eprintln!("error: {msg}\n\n{USAGE}");
                ExitCode::FAILURE
            }
        }
    }
}
