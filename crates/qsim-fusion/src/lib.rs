//! # qsim-fusion
//!
//! Gate-fusion transpiler: combines circuit gates into larger *fused
//! gates* of up to `max_fused_qubits` qubits, the optimization the paper
//! sweeps in every figure ("maximum number of fused gates", qsim's `-f`
//! flag).
//!
//! Fusion trades memory passes for arithmetic (paper §2.2, Figure 5): two
//! gates acting on the same qubit fuse by matrix product (*time fusion*),
//! gates on different qubits fuse by tensor product (*space fusion*). A
//! fused `k`-qubit gate applies one `2^k × 2^k` matrix in a single pass
//! over the state vector instead of several small passes — each pass reads
//! and writes the entire state, so on bandwidth-bound hardware fewer,
//! denser passes win until the `2^k`-sized matrix work and the shrinking
//! parallelism (`2^{n-k}` groups) take over; qsim (and this
//! reproduction) find the optimum at 4 fused qubits.
//!
//! The default fuser is a greedy, order-preserving scan (the
//! `MultiQubitGateFuser` strategy): each gate merges into the most recent
//! fused gate that already owns its qubit frontier whenever the merged
//! qubit set still fits in `max_fused_qubits`; measurements are fusion
//! barriers. The [`planner`] module layers a cost-model-driven strategy
//! on the same scan, pricing each legal merge with a per-backend
//! [`cost::FusionCostModel`] instead of always taking it.

use qsim_circuit::circuit::Circuit;
use qsim_core::matrix::GateMatrix;
use qsim_core::types::Float;

pub mod cost;
pub mod planner;

pub use cost::{
    CpuCostModel, FusionCostModel, GpuCostModel, TrafficEstimate, LANE_SHUFFLE_FLOPS,
    SWEPT_JOIN_TRAFFIC_SHARE,
};
pub use planner::{
    fuse_auto, fuse_with_lookahead, fuse_with_model, plan, FusionPlan, FusionStrategy,
    DEFAULT_LOOKAHEAD,
};

/// A fused unitary acting on a sorted set of qubits.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedGate {
    /// Sorted target qubits (bit `j` of the matrix index ↔ `qubits[j]`).
    pub qubits: Vec<usize>,
    /// The fused unitary, always composed in `f64`; backends cast to
    /// their working precision at application time.
    pub matrix: GateMatrix<f64>,
    /// How many source-circuit gates were folded into this one.
    pub source_gates: usize,
    /// `(first, last)` source time slices folded in.
    pub time_range: (usize, usize),
}

impl FusedGate {
    /// The fused matrix cast to the backend's working precision.
    pub fn matrix_as<F: Float>(&self) -> GateMatrix<F> {
        self.matrix.cast()
    }

    /// Number of target qubits (the fused gate's width `k`).
    pub fn width(&self) -> usize {
        self.qubits.len()
    }

    /// Highest target qubit — what decides whether the gate fits inside a
    /// cache block of the sweep executor.
    pub fn max_qubit(&self) -> usize {
        *self.qubits.last().expect("fused gate acts on at least one qubit")
    }

    /// Whether this gate applies block-locally for blocks of
    /// `2^block_qubits` amplitudes (see [`qsim_core::sweep`]).
    pub fn is_block_local(&self, block_qubits: usize) -> bool {
        qsim_core::sweep::is_block_local(&self.qubits, block_qubits)
    }
}

/// One operation of a fused circuit.
#[derive(Debug, Clone, PartialEq)]
pub enum FusedOp {
    /// A fused unitary gate.
    Unitary(FusedGate),
    /// A measurement barrier (kept in place; never fused across).
    Measurement { qubits: Vec<usize>, time: usize },
}

/// The fuser's output: an op list equivalent to the source circuit.
#[derive(Debug, Clone, PartialEq)]
pub struct FusedCircuit {
    pub num_qubits: usize,
    pub ops: Vec<FusedOp>,
    /// The `max_fused_qubits` this circuit was fused with.
    pub max_fused_qubits: usize,
}

impl FusedCircuit {
    /// Number of fused unitary passes (the quantity that determines
    /// memory traffic).
    pub fn num_unitaries(&self) -> usize {
        self.ops.iter().filter(|op| matches!(op, FusedOp::Unitary(_))).count()
    }

    /// Iterator over the fused unitaries.
    pub fn unitaries(&self) -> impl Iterator<Item = &FusedGate> {
        self.ops.iter().filter_map(|op| match op {
            FusedOp::Unitary(g) => Some(g),
            FusedOp::Measurement { .. } => None,
        })
    }

    /// Iterator over the measurement barriers as `(sorted qubits, time)`,
    /// in plan order — the metadata plan-level lint rules cross-check
    /// against the source circuit.
    pub fn measurements(&self) -> impl Iterator<Item = (&[usize], usize)> {
        self.ops.iter().filter_map(|op| match op {
            FusedOp::Unitary(_) => None,
            FusedOp::Measurement { qubits, time } => Some((qubits.as_slice(), *time)),
        })
    }

    /// Total source-circuit gates folded into this plan's unitaries
    /// (excludes measurements). A correct plan accounts for every
    /// non-measurement gate of its source circuit exactly once.
    pub fn source_gate_count(&self) -> usize {
        self.unitaries().map(|g| g.source_gates).sum()
    }

    /// Fusion statistics for reporting.
    pub fn stats(&self) -> FusionStats {
        let mut by_qubits = [0usize; qsim_core::kernels::MAX_GATE_QUBITS + 1];
        let mut source = 0usize;
        let mut fused = 0usize;
        for g in self.unitaries() {
            by_qubits[g.qubits.len()] += 1;
            source += g.source_gates;
            fused += 1;
        }
        FusionStats { source_gates: source, fused_gates: fused, fused_by_qubit_count: by_qubits }
    }

    /// Pass accounting of this circuit under the cache-blocked sweep:
    /// how many full passes over the state the sweep executor would make
    /// (measurements are sweep barriers, like fusion barriers).
    pub fn sweep_stats(
        &self,
        config: &qsim_core::sweep::SweepConfig,
    ) -> qsim_core::sweep::SweepStats {
        qsim_core::sweep::sweep_stats(
            self.ops.iter().map(|op| match op {
                FusedOp::Unitary(g) => Some(g.qubits.as_slice()),
                FusedOp::Measurement { .. } => None,
            }),
            config,
            self.num_qubits,
        )
    }

    /// Order-sensitive hash of the plan's *functional* content: qubit
    /// count, op sequence, target sets, and bit-exact matrix entries —
    /// ignoring provenance (`source_gates`, `time_range`). Two plans with
    /// equal hashes execute identically, which is what lets the serve
    /// layer's coalescing queue gang-schedule hash-equal Batch-class jobs
    /// through one `run_batch` call.
    /// Variable-length fields (op list, qubit sets, matrix entries) are
    /// hashed with explicit `write_u64` length prefixes, mirroring
    /// `Circuit::content_hash`: adjacent fields must not be able to alias
    /// even if std's `Hash` encodings for `str`/`Vec` change.
    pub fn content_hash(&self) -> u64 {
        use std::hash::Hasher;
        let mut h = std::collections::hash_map::DefaultHasher::new();
        h.write_u64(self.num_qubits as u64);
        h.write_u64(self.ops.len() as u64);
        for op in &self.ops {
            match op {
                FusedOp::Unitary(g) => {
                    h.write_u8(0);
                    h.write_u64(g.qubits.len() as u64);
                    for &q in &g.qubits {
                        h.write_u64(q as u64);
                    }
                    let entries = g.matrix.as_slice();
                    h.write_u64(entries.len() as u64);
                    for a in entries {
                        h.write_u64(a.re.to_bits());
                        h.write_u64(a.im.to_bits());
                    }
                }
                FusedOp::Measurement { qubits, time } => {
                    h.write_u8(1);
                    h.write_u64(qubits.len() as u64);
                    for &q in qubits {
                        h.write_u64(q as u64);
                    }
                    h.write_u64(*time as u64);
                }
            }
        }
        h.finish()
    }
}

/// Summary statistics of a fusion pass.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FusionStats {
    /// Unitary gates in the source circuit.
    pub source_gates: usize,
    /// Fused unitaries produced.
    pub fused_gates: usize,
    /// Histogram: `fused_by_qubit_count[k]` = fused gates acting on `k`
    /// qubits.
    pub fused_by_qubit_count: [usize; qsim_core::kernels::MAX_GATE_QUBITS + 1],
}

impl FusionStats {
    /// Average source gates folded per fused gate — the compression ratio
    /// that drives the bandwidth saving.
    pub fn compression(&self) -> f64 {
        if self.fused_gates == 0 {
            0.0
        } else {
            self.source_gates as f64 / self.fused_gates as f64
        }
    }
}

/// Internal builder state for one in-progress fused gate.
struct Builder {
    qubits: Vec<usize>,
    matrix: GateMatrix<f64>,
    source_gates: usize,
    time_range: (usize, usize),
}

/// Frontier marker per qubit: which output op last touched it.
#[derive(Clone, Copy, PartialEq)]
enum Frontier {
    /// Untouched so far.
    Free,
    /// Output op index (a fusable `Builder` lives there).
    Op(usize),
    /// A measurement barrier at this output index: nothing merges into it.
    Barrier(usize),
}

/// Fuse `circuit` with the given `max_fused_qubits` (1..=6; qsim default 2,
/// paper optimum 4).
///
/// Semantics are preserved exactly: the emitted op sequence applies the
/// same unitary (and the same measurements, in order) as the source
/// circuit. Gates wider than `max_fused_qubits` pass through unfused.
pub fn fuse(circuit: &Circuit, max_fused_qubits: usize) -> FusedCircuit {
    assert!(
        (1..=qsim_core::kernels::MAX_GATE_QUBITS).contains(&max_fused_qubits),
        "max_fused_qubits must be in 1..={}, got {max_fused_qubits}",
        qsim_core::kernels::MAX_GATE_QUBITS
    );
    if let Err(diags) = circuit.validate() {
        panic!("fuse() requires a valid circuit:\n{}", qsim_core::diag::render_list(&diags));
    }

    // Output slots: either a live Builder or a flushed op.
    enum Slot {
        Building(Builder),
        Done(FusedOp),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(circuit.ops.len());
    let mut frontier = vec![Frontier::Free; circuit.num_qubits];

    for op in &circuit.ops {
        if op.is_measurement() {
            let idx = slots.len();
            let mut qs = op.qubits.clone();
            qs.sort_unstable();
            for &q in &qs {
                frontier[q] = Frontier::Barrier(idx);
            }
            slots.push(Slot::Done(FusedOp::Measurement { qubits: qs, time: op.time }));
            continue;
        }

        let (sorted_qubits, matrix) =
            op.sorted_matrix::<f64>().expect("non-measurement gates have matrices");
        // Extra controls make a gate opaque to this fuser: emit it as its
        // own fused gate over targets+controls with the expanded matrix.
        let (sorted_qubits, matrix) = if op.controls.is_empty() {
            (sorted_qubits, matrix)
        } else {
            expand_controlled(&sorted_qubits, &op.controls, &matrix)
        };

        // A gate may merge into the *latest* output op among its qubits'
        // frontiers: every other frontier is strictly earlier, and no op
        // after the target touches any of this gate's qubits (otherwise
        // that op would itself be the latest frontier). A barrier that is
        // the latest frontier blocks merging entirely.
        let mut merge_target: Option<usize> = None;
        let mut latest_barrier: Option<usize> = None;
        for &q in &sorted_qubits {
            match frontier[q] {
                Frontier::Free => {}
                Frontier::Op(i) => {
                    if merge_target.is_none_or(|m| i > m) {
                        merge_target = Some(i);
                    }
                }
                Frontier::Barrier(i) => {
                    if latest_barrier.is_none_or(|m| i > m) {
                        latest_barrier = Some(i);
                    }
                }
            }
        }
        if let (Some(t), Some(b)) = (merge_target, latest_barrier) {
            if b > t {
                merge_target = None;
            }
        }

        let mut placed = None;
        if let Some(t) = merge_target {
            if let Slot::Building(b) = &mut slots[t] {
                let union = union_sorted(&b.qubits, &sorted_qubits);
                if union.len() <= max_fused_qubits {
                    // matrix_new = expand(gate) · expand(existing)
                    let eg = matrix.expand_to(&sorted_qubits, &union);
                    let eb = b.matrix.expand_to(&b.qubits, &union);
                    b.matrix = eg.matmul(&eb);
                    b.qubits = union;
                    b.source_gates += 1;
                    b.time_range.1 = op.time;
                    placed = Some(t);
                }
            }
        }

        let idx = match placed {
            Some(t) => t,
            None => {
                let idx = slots.len();
                slots.push(Slot::Building(Builder {
                    qubits: sorted_qubits.clone(),
                    matrix,
                    source_gates: 1,
                    time_range: (op.time, op.time),
                }));
                idx
            }
        };
        for &q in &sorted_qubits {
            frontier[q] = Frontier::Op(idx);
        }
    }

    let ops = slots
        .into_iter()
        .map(|s| match s {
            Slot::Done(op) => op,
            Slot::Building(b) => FusedOp::Unitary(FusedGate {
                qubits: b.qubits,
                matrix: b.matrix,
                source_gates: b.source_gates,
                time_range: b.time_range,
            }),
        })
        .collect();

    FusedCircuit { num_qubits: circuit.num_qubits, ops, max_fused_qubits }
}

/// Expand a gate with extra always-one controls into a plain unitary over
/// `targets ∪ controls`.
fn expand_controlled(
    targets: &[usize],
    controls: &[usize],
    matrix: &GateMatrix<f64>,
) -> (Vec<usize>, GateMatrix<f64>) {
    let union = {
        let mut u: Vec<usize> = targets.iter().chain(controls.iter()).copied().collect();
        u.sort_unstable();
        u
    };
    let dim = 1usize << union.len();
    let mut out = GateMatrix::<f64>::identity(dim);
    let control_mask: usize = controls
        .iter()
        .map(|c| 1usize << union.iter().position(|u| u == c).expect("control in union"))
        .sum();
    let target_pos: Vec<usize> = targets
        .iter()
        .map(|t| union.iter().position(|u| u == t).expect("target in union"))
        .collect();
    let tmask = targets_mask(&target_pos);
    for r in 0..dim {
        if r & control_mask != control_mask {
            continue; // identity row (already set)
        }
        let rt = qsim_core::matrix::extract_bits(r, &target_pos);
        // Clear the identity diagonal for this controlled row.
        out.set(r, r, qsim_core::types::Cplx::zero());
        for ct in 0..matrix.dim() {
            let c = (r & !tmask) | qsim_core::matrix::deposit_bits(ct, &target_pos);
            out.set(r, c, matrix.get(rt, ct));
        }
    }
    (union, out)
}

fn targets_mask(positions: &[usize]) -> usize {
    positions.iter().map(|&p| 1usize << p).sum()
}

/// Merge two sorted, distinct qubit lists.
fn union_sorted(a: &[usize], b: &[usize]) -> Vec<usize> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::gates::GateKind;
    use qsim_circuit::library;

    /// Apply a circuit (unfused reference) and a fused circuit to fresh
    /// states and compare.
    fn check_equivalence(circuit: &Circuit, max_f: usize) {
        use qsim_core::kernels::apply_gate_seq;
        use qsim_core::StateVector;

        let mut reference = StateVector::<f64>::new(circuit.num_qubits);
        for op in &circuit.ops {
            if op.is_measurement() {
                continue; // equivalence checked on unitary part only
            }
            let (qs, m) = op.sorted_matrix::<f64>().unwrap();
            apply_gate_seq(&mut reference, &qs, &m);
        }

        let fused = fuse(circuit, max_f);
        let mut state = StateVector::<f64>::new(circuit.num_qubits);
        for op in &fused.ops {
            if let FusedOp::Unitary(g) = op {
                apply_gate_seq(&mut state, &g.qubits, &g.matrix);
            }
        }
        let diff = reference.max_abs_diff(&state);
        assert!(diff < 1e-12, "fused(f={max_f}) diverges from reference by {diff}");
    }

    #[test]
    fn single_qubit_chain_fuses_to_one_gate() {
        let mut c = Circuit::new(1);
        c.push(GateKind::H, &[0]).push(GateKind::T, &[0]).push(GateKind::X, &[0]);
        let f = fuse(&c, 2);
        assert_eq!(f.num_unitaries(), 1);
        let g = f.unitaries().next().unwrap();
        assert_eq!(g.source_gates, 3);
        assert!(g.matrix.is_unitary(1e-12));
        check_equivalence(&c, 2);
    }

    #[test]
    fn two_qubit_gate_absorbs_neighbors() {
        let mut c = Circuit::new(2);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Cz, &[0, 1]);
        c.add(2, GateKind::T, &[1]);
        let f = fuse(&c, 2);
        assert_eq!(f.num_unitaries(), 1);
        assert_eq!(f.unitaries().next().unwrap().source_gates, 3);
        check_equivalence(&c, 2);
    }

    #[test]
    fn max_one_qubit_leaves_two_qubit_gates_alone() {
        let mut c = Circuit::new(2);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Cz, &[0, 1]);
        c.add(2, GateKind::T, &[1]);
        let f = fuse(&c, 1);
        // CZ cannot fuse with anything; H and T stay single.
        assert_eq!(f.num_unitaries(), 3);
        check_equivalence(&c, 1);
    }

    #[test]
    fn fusion_preserves_order_dependencies() {
        let mut c = Circuit::new(3);
        c.add(0, GateKind::X, &[0]);
        c.add(1, GateKind::Cz, &[0, 1]);
        c.add(2, GateKind::Cnot, &[1, 2]);
        c.add(3, GateKind::H, &[0]);
        c.add(4, GateKind::Cz, &[0, 2]);
        for f in 1..=4 {
            check_equivalence(&c, f);
        }
    }

    #[test]
    fn rqc_equivalence_across_fusion_sizes() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(12, 8, 42));
        for f in 1..=6 {
            check_equivalence(&c, f);
        }
    }

    #[test]
    fn random_dense_equivalence() {
        for seed in 0..5 {
            let c = library::random_dense(8, 60, seed);
            for f in [2, 4, 6] {
                check_equivalence(&c, f);
            }
        }
    }

    #[test]
    fn qft_equivalence() {
        let c = library::qft(7);
        for f in 1..=5 {
            check_equivalence(&c, f);
        }
    }

    #[test]
    fn fused_matrices_are_unitary() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(10, 6, 3));
        let f = fuse(&c, 4);
        for g in f.unitaries() {
            assert!(g.matrix.is_unitary(1e-10));
            assert!(g.qubits.len() <= 4);
            assert!(g.qubits.windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn higher_fusion_yields_fewer_passes() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(16, 10, 1));
        let passes: Vec<usize> = (1..=6).map(|f| fuse(&c, f).num_unitaries()).collect();
        for w in passes.windows(2) {
            assert!(w[1] <= w[0], "fusion must not increase pass count: {passes:?}");
        }
        assert!(passes[3] < passes[0] / 2, "f=4 should compress well: {passes:?}");
    }

    #[test]
    fn stats_account_for_every_gate() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(12, 8, 9));
        let (one, two, _) = c.gate_counts();
        for f in 1..=6 {
            let s = fuse(&c, f).stats();
            assert_eq!(s.source_gates, one + two, "f={f}");
            assert!(s.compression() >= 1.0);
            assert_eq!(s.fused_by_qubit_count.iter().sum::<usize>(), s.fused_gates);
            // Gates wider than f pass through unfused, so the histogram may
            // extend to the circuit's native max arity (2) even for f = 1.
            let cap = f.max(2);
            assert!(s.fused_by_qubit_count[cap + 1..].iter().all(|&x| x == 0));
        }
    }

    #[test]
    fn measurement_is_a_barrier() {
        let mut c = Circuit::new(1);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Measurement, &[0]);
        c.add(2, GateKind::X, &[0]);
        let f = fuse(&c, 4);
        // H | M | X: three ops; H and X must not fuse across M.
        assert_eq!(f.ops.len(), 3);
        assert!(matches!(f.ops[1], FusedOp::Measurement { .. }));
        assert_eq!(f.num_unitaries(), 2);
    }

    #[test]
    fn controlled_op_expansion() {
        use qsim_circuit::circuit::GateOp;
        use qsim_core::kernels::{apply_controlled_gate_seq, apply_gate_seq};
        use qsim_core::StateVector;

        // A controlled-H (control 2, target 0) via the fuser's expansion
        // must match the controlled kernel.
        let mut c = Circuit::new(3);
        c.ops.push(GateOp::with_controls(0, GateKind::H, vec![0], vec![2]));
        let f = fuse(&c, 3);
        let g = f.unitaries().next().unwrap();
        assert_eq!(g.qubits, vec![0, 2]);
        assert!(g.matrix.is_unitary(1e-12));

        let mut a = StateVector::<f64>::new(3);
        a.set_basis_state(0b100);
        let mut b = a.clone();
        apply_gate_seq(&mut a, &g.qubits, &g.matrix);
        let h = GateKind::H.matrix::<f64>().unwrap();
        apply_controlled_gate_seq(&mut b, &[0], &[2], 1, &h);
        assert!(a.max_abs_diff(&b) < 1e-14);
    }

    #[test]
    #[should_panic(expected = "max_fused_qubits")]
    fn zero_fusion_rejected() {
        let c = library::bell();
        let _ = fuse(&c, 0);
    }

    #[test]
    fn union_sorted_merges() {
        assert_eq!(union_sorted(&[1, 3], &[2, 3, 5]), vec![1, 2, 3, 5]);
        assert_eq!(union_sorted(&[], &[0]), vec![0]);
        assert_eq!(union_sorted(&[4], &[]), vec![4]);
    }

    #[test]
    fn matrix_precision_cast() {
        let c = library::bell();
        let f = fuse(&c, 2);
        let g = f.unitaries().next().unwrap();
        let m32 = g.matrix_as::<f32>();
        assert!(m32.is_unitary(1e-5));
    }

    #[test]
    fn block_locality_of_fused_gates() {
        let c = library::bell();
        let f = fuse(&c, 2);
        let g = f.unitaries().next().unwrap();
        assert_eq!(g.max_qubit(), 1);
        assert!(g.is_block_local(2));
        assert!(!g.is_block_local(1));
    }

    #[test]
    fn sweep_stats_counts_measurement_barriers() {
        use qsim_circuit::circuit::GateOp;
        use qsim_core::sweep::SweepConfig;
        // Bell circuit + measurement, then more gates: the measurement
        // must split the runs even though all gates are block-local.
        let mut c = library::bell();
        c.ops.push(GateOp::new(2, GateKind::Measurement, vec![0, 1]));
        c.ops.push(GateOp::new(3, GateKind::H, vec![0]));
        c.ops.push(GateOp::new(3, GateKind::H, vec![1]));
        let f = fuse(&c, 2);
        let s = f.sweep_stats(&SweepConfig::default());
        assert_eq!(s.gates as usize, f.num_unitaries());
        assert_eq!(s.barrier_gates, 0, "all targets below default block");
        assert_eq!(s.runs, 2, "measurement closes the first run");
        assert_eq!(s.full_passes, 2);
        // With the sweep disabled every fused gate is its own pass.
        let off = f.sweep_stats(&SweepConfig::disabled());
        assert_eq!(off.full_passes, off.gates);
    }
}
