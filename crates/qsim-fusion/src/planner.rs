//! Cost-model-driven fusion planning.
//!
//! The greedy fuser in [`crate::fuse`] always takes the first legal merge.
//! That is blind to what the merge costs downstream: absorbing a gate can
//! push a fused gate from the cheap Low-kernel / SIMD-lane class into the
//! strided High path, or (on a HIP-like device) widen a low-qubit gate
//! whose `ApplyGateL_Kernel`-style pass pays a steep per-low-qubit
//! traffic overhead. The planner here keeps the greedy scan's order
//! semantics — a gate may only merge into the *latest* output op among
//! its qubits' frontiers — but prices that single legal merge against
//! starting a fresh pass with a [`FusionCostModel`], looking ahead a
//! sliding window of upcoming gates before committing.
//!
//! Because the only legal merge target is unique, each gate poses a
//! binary choice (merge vs. new slot). The planner simulates both
//! branches on a cheap *shadow* of the fuser state (qubit sets only, no
//! matrices) for the next [`DEFAULT_LOOKAHEAD`] source gates, accounting
//! each step incrementally: a merge costs
//! `gate_cost(union) − gate_cost(existing)`, a fresh slot costs
//! `gate_cost(gate)`. These deltas telescope, so the branch sums compare
//! exactly the model's [`FusionCostModel::plan_cost`] of the two
//! futures restricted to the window.
//!
//! [`FusionStrategy::Auto`] is the in-code analogue of the paper's
//! fusion sweep (Figures 7 and 9): it plans at every
//! max-fused ∈ 2..=[`MAX_GATE_QUBITS`] and keeps the cheapest predicted
//! plan, preferring narrower budgets when the model sees no benefit from
//! widening — which is how a HIP-like spec settles on a smaller fusion
//! width than an A100-like one.

use qsim_circuit::circuit::Circuit;
use qsim_core::kernels::MAX_GATE_QUBITS;

use crate::cost::{FusionCostModel, TrafficEstimate};
use crate::{fuse, Builder, Frontier, FusedCircuit, FusedGate, FusedOp};

/// How a circuit is turned into a fused plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FusionStrategy {
    /// The classic qsim scan: take every legal merge (paper default).
    Greedy,
    /// Score each legal merge with the backend's cost model over a
    /// lookahead window; merge only when the model predicts it pays.
    Cost,
    /// Sweep max-fused ∈ 2..=6 with the cost planner and keep the argmin
    /// predicted plan — the paper's fusion sweep, run against the model.
    Auto,
}

impl FusionStrategy {
    /// Stable lowercase name, as accepted by `--fusion` and shown in
    /// reports.
    pub const fn label(self) -> &'static str {
        match self {
            FusionStrategy::Greedy => "greedy",
            FusionStrategy::Cost => "cost",
            FusionStrategy::Auto => "auto",
        }
    }

    /// All strategies, in sweep order.
    pub const ALL: [FusionStrategy; 3] =
        [FusionStrategy::Greedy, FusionStrategy::Cost, FusionStrategy::Auto];
}

impl std::str::FromStr for FusionStrategy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "greedy" => Ok(FusionStrategy::Greedy),
            "cost" => Ok(FusionStrategy::Cost),
            "auto" => Ok(FusionStrategy::Auto),
            other => Err(format!("unknown fusion strategy '{other}' (expected greedy|cost|auto)")),
        }
    }
}

impl std::fmt::Display for FusionStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// Source gates the planner simulates ahead before committing a merge
/// decision. Zero degenerates to the local rule (compare the merge delta
/// against a standalone pass).
pub const DEFAULT_LOOKAHEAD: usize = 8;

/// Relative slack under which [`fuse_auto`] prefers a narrower budget: if
/// widening improves the predicted cost by less than this, the narrower
/// plan (smaller matrices, cheaper fusion pass) wins.
const AUTO_TOLERANCE: f64 = 0.005;

/// A fused circuit together with how it was chosen and what the cost
/// model predicts it will take to execute.
#[derive(Debug, Clone)]
pub struct FusionPlan {
    /// The fused op sequence (for `Auto`, `fused.max_fused_qubits` is the
    /// chosen width).
    pub fused: FusedCircuit,
    /// The strategy that produced it.
    pub strategy: FusionStrategy,
    /// The cost model's prediction for the whole plan, in seconds.
    pub predicted_cost_seconds: f64,
    /// The cost model's modeled memory traffic for the whole plan — the
    /// per-job bytes/s demand the serve layer's bandwidth-aware admission
    /// ledger charges while the job runs.
    pub predicted_traffic: TrafficEstimate,
}

/// Plan `circuit` under `strategy`. `max_fused_qubits` bounds `Greedy`
/// and `Cost`; `Auto` sweeps its own range and ignores it.
///
/// # Panics
/// As [`fuse`]: on an out-of-range `max_fused_qubits` (for the strategies
/// that use it) or an invalid circuit.
pub fn plan(
    circuit: &Circuit,
    strategy: FusionStrategy,
    max_fused_qubits: usize,
    model: &dyn FusionCostModel,
) -> FusionPlan {
    let fused = match strategy {
        FusionStrategy::Greedy => fuse(circuit, max_fused_qubits),
        FusionStrategy::Cost => fuse_with_model(circuit, max_fused_qubits, model),
        FusionStrategy::Auto => fuse_auto(circuit, model),
    };
    FusionPlan {
        predicted_cost_seconds: model.plan_cost(&fused),
        predicted_traffic: model.plan_traffic(&fused),
        fused,
        strategy,
    }
}

/// Fuse with the cost model at the default lookahead window.
///
/// The lookahead rule is a bounded-horizon heuristic: declining a merge
/// reshapes the frontier for every later gate, and on pass-dominated
/// devices those cascades can occasionally price worse than first-legal
/// merging. The planner must never lose to greedy *by its own metric*, so
/// when the lookahead plan scores above the greedy baseline the greedy
/// plan is returned instead.
pub fn fuse_with_model(
    circuit: &Circuit,
    max_fused_qubits: usize,
    model: &dyn FusionCostModel,
) -> FusedCircuit {
    let planned = fuse_with_lookahead(circuit, max_fused_qubits, model, DEFAULT_LOOKAHEAD);
    let greedy = fuse(circuit, max_fused_qubits);
    if model.plan_cost(&planned) <= model.plan_cost(&greedy) {
        planned
    } else {
        greedy
    }
}

/// Sweep max-fused ∈ 2..=[`MAX_GATE_QUBITS`] with the cost planner and
/// return the cheapest predicted plan (narrowest within
/// [`AUTO_TOLERANCE`] of the minimum).
pub fn fuse_auto(circuit: &Circuit, model: &dyn FusionCostModel) -> FusedCircuit {
    let mut plans: Vec<(f64, FusedCircuit)> = (2..=MAX_GATE_QUBITS)
        .map(|f| {
            let fused = fuse_with_model(circuit, f, model);
            (model.plan_cost(&fused), fused)
        })
        .collect();
    let min = plans.iter().map(|(c, _)| *c).fold(f64::INFINITY, f64::min);
    let chosen = plans
        .iter()
        .position(|(c, _)| *c <= min * (1.0 + AUTO_TOLERANCE))
        .expect("auto sweep is non-empty");
    plans.swap_remove(chosen).1
}

/// Per-op planning metadata: the full sorted qubit set (targets ∪
/// controls for gates), precomputed once so lookahead never touches
/// matrices.
enum OpQubits {
    Gate(Vec<usize>),
    Measurement(Vec<usize>),
}

/// What the planner decided for one gate.
#[derive(Clone, Copy)]
enum Action {
    /// Merge into output slot `t` (the unique legal target).
    Merge(usize),
    /// Open a fresh output slot.
    New,
}

/// Matrix-free mirror of the fuser state, cheap enough to clone per
/// branch: the qubit frontier plus each output slot's qubit set (`None`
/// marks a measurement barrier).
#[derive(Clone)]
struct Shadow {
    frontier: Vec<Frontier>,
    slots: Vec<Option<Vec<usize>>>,
}

impl Shadow {
    fn new(num_qubits: usize) -> Shadow {
        Shadow { frontier: vec![Frontier::Free; num_qubits], slots: Vec::new() }
    }

    /// The unique legal merge target for a gate on `qubits`, with the
    /// merged qubit set, if one exists under `max_fused_qubits`. Mirrors
    /// the frontier rule of [`fuse`]: the latest op among the gate's
    /// frontiers, unless a later barrier blocks it or the union bursts
    /// the budget.
    fn candidate(&self, qubits: &[usize], max_fused_qubits: usize) -> Option<(usize, Vec<usize>)> {
        let mut merge_target: Option<usize> = None;
        let mut latest_barrier: Option<usize> = None;
        for &q in qubits {
            match self.frontier[q] {
                Frontier::Free => {}
                Frontier::Op(i) => {
                    if merge_target.is_none_or(|m| i > m) {
                        merge_target = Some(i);
                    }
                }
                Frontier::Barrier(i) => {
                    if latest_barrier.is_none_or(|m| i > m) {
                        latest_barrier = Some(i);
                    }
                }
            }
        }
        let t = merge_target?;
        if latest_barrier.is_some_and(|b| b > t) {
            return None;
        }
        let existing = self.slots[t].as_ref().expect("op frontier points at a gate slot");
        let union = crate::union_sorted(existing, qubits);
        (union.len() <= max_fused_qubits).then_some((t, union))
    }

    /// Apply `action` for a gate on `qubits`, returning the incremental
    /// modeled cost (merge delta or standalone pass).
    fn apply_gate(
        &mut self,
        qubits: &[usize],
        action: Action,
        model: &dyn FusionCostModel,
        num_qubits: usize,
    ) -> f64 {
        let (idx, delta) = match action {
            Action::Merge(t) => {
                let existing = self.slots[t].take().expect("merge target is a gate slot");
                let union = crate::union_sorted(&existing, qubits);
                let delta =
                    model.gate_cost(num_qubits, &union) - model.gate_cost(num_qubits, &existing);
                self.slots[t] = Some(union);
                (t, delta)
            }
            Action::New => {
                let idx = self.slots.len();
                self.slots.push(Some(qubits.to_vec()));
                (idx, model.gate_cost(num_qubits, qubits))
            }
        };
        for &q in qubits {
            self.frontier[q] = Frontier::Op(idx);
        }
        delta
    }

    fn apply_barrier(&mut self, qubits: &[usize]) {
        let idx = self.slots.len();
        self.slots.push(None);
        for &q in qubits {
            self.frontier[q] = Frontier::Barrier(idx);
        }
    }

    /// The local (no-lookahead) rule: merge iff the merge delta does not
    /// exceed a standalone pass; ties merge, matching greedy compression.
    fn local_action(
        &self,
        qubits: &[usize],
        max_fused_qubits: usize,
        model: &dyn FusionCostModel,
        num_qubits: usize,
    ) -> Action {
        match self.candidate(qubits, max_fused_qubits) {
            None => Action::New,
            Some((t, union)) => {
                let existing = self.slots[t].as_ref().expect("merge target is a gate slot");
                let delta =
                    model.gate_cost(num_qubits, &union) - model.gate_cost(num_qubits, existing);
                if delta <= model.gate_cost(num_qubits, qubits) {
                    Action::Merge(t)
                } else {
                    Action::New
                }
            }
        }
    }
}

/// Cost of playing the next `window` ops forward from `shadow` under the
/// local rule.
fn lookahead_cost(
    mut shadow: Shadow,
    window: &[OpQubits],
    max_fused_qubits: usize,
    model: &dyn FusionCostModel,
    num_qubits: usize,
) -> f64 {
    let mut total = 0.0;
    for op in window {
        match op {
            OpQubits::Gate(qs) => {
                let action = shadow.local_action(qs, max_fused_qubits, model, num_qubits);
                total += shadow.apply_gate(qs, action, model, num_qubits);
            }
            OpQubits::Measurement(qs) => shadow.apply_barrier(qs),
        }
    }
    total
}

/// Fuse with the cost model, simulating `lookahead` source gates ahead of
/// each merge decision.
///
/// Order semantics are identical to [`fuse`] — same legal merge targets,
/// same measurement barriers — so every plan this produces is equivalent
/// to the greedy one; only *which* legal merges are taken differs.
///
/// # Panics
/// As [`fuse`]: `max_fused_qubits` out of `1..=`[`MAX_GATE_QUBITS`] or an
/// invalid circuit.
pub fn fuse_with_lookahead(
    circuit: &Circuit,
    max_fused_qubits: usize,
    model: &dyn FusionCostModel,
    lookahead: usize,
) -> FusedCircuit {
    assert!(
        (1..=MAX_GATE_QUBITS).contains(&max_fused_qubits),
        "max_fused_qubits must be in 1..={MAX_GATE_QUBITS}, got {max_fused_qubits}"
    );
    if let Err(diags) = circuit.validate() {
        panic!(
            "fuse_with_lookahead() requires a valid circuit:\n{}",
            qsim_core::diag::render_list(&diags)
        );
    }
    let n = circuit.num_qubits;

    // Qubit sets up front, so branch simulation never builds a matrix.
    let infos: Vec<OpQubits> = circuit
        .ops
        .iter()
        .map(|op| {
            let mut qs: Vec<usize> = op.qubits.iter().chain(op.controls.iter()).copied().collect();
            qs.sort_unstable();
            qs.dedup();
            if op.is_measurement() {
                OpQubits::Measurement(qs)
            } else {
                OpQubits::Gate(qs)
            }
        })
        .collect();

    enum Slot {
        Building(Builder),
        Done(FusedOp),
    }
    let mut slots: Vec<Slot> = Vec::with_capacity(circuit.ops.len());
    let mut shadow = Shadow::new(n);

    for (i, op) in circuit.ops.iter().enumerate() {
        let qs = match &infos[i] {
            OpQubits::Measurement(qs) => {
                shadow.apply_barrier(qs);
                slots.push(Slot::Done(FusedOp::Measurement { qubits: qs.clone(), time: op.time }));
                continue;
            }
            OpQubits::Gate(qs) => qs,
        };

        // Decide merge-vs-new by simulating both branches over the
        // lookahead window; ties merge (denser plans, like greedy).
        let action = match shadow.candidate(qs, max_fused_qubits) {
            None => Action::New,
            Some((t, _union)) => {
                let window = &infos[i + 1..(i + 1 + lookahead).min(infos.len())];
                let mut merged = shadow.clone();
                let cost_merge = merged.apply_gate(qs, Action::Merge(t), model, n)
                    + lookahead_cost(merged, window, max_fused_qubits, model, n);
                let mut fresh = shadow.clone();
                let cost_new = fresh.apply_gate(qs, Action::New, model, n)
                    + lookahead_cost(fresh, window, max_fused_qubits, model, n);
                if cost_merge <= cost_new {
                    Action::Merge(t)
                } else {
                    Action::New
                }
            }
        };
        shadow.apply_gate(qs, action, model, n);

        // Mirror the decision onto the real (matrix-carrying) slots.
        let (sorted_qubits, matrix) =
            op.sorted_matrix::<f64>().expect("non-measurement gates have matrices");
        let (sorted_qubits, matrix) = if op.controls.is_empty() {
            (sorted_qubits, matrix)
        } else {
            crate::expand_controlled(&sorted_qubits, &op.controls, &matrix)
        };
        match action {
            Action::Merge(t) => {
                let Slot::Building(b) = &mut slots[t] else {
                    unreachable!("merge target is a live builder")
                };
                let union = crate::union_sorted(&b.qubits, &sorted_qubits);
                let eg = matrix.expand_to(&sorted_qubits, &union);
                let eb = b.matrix.expand_to(&b.qubits, &union);
                b.matrix = eg.matmul(&eb);
                b.qubits = union;
                b.source_gates += 1;
                b.time_range.1 = op.time;
            }
            Action::New => {
                slots.push(Slot::Building(Builder {
                    qubits: sorted_qubits,
                    matrix,
                    source_gates: 1,
                    time_range: (op.time, op.time),
                }));
            }
        }
    }

    let ops = slots
        .into_iter()
        .map(|s| match s {
            Slot::Done(op) => op,
            Slot::Building(b) => FusedOp::Unitary(FusedGate {
                qubits: b.qubits,
                matrix: b.matrix,
                source_gates: b.source_gates,
                time_range: b.time_range,
            }),
        })
        .collect();

    FusedCircuit { num_qubits: circuit.num_qubits, ops, max_fused_qubits }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::{CpuCostModel, GpuCostModel};
    use gpu_model::specs::DeviceSpec;
    use qsim_circuit::gates::GateKind;
    use qsim_circuit::library;
    use qsim_core::sweep::SweepConfig;
    use qsim_core::types::Precision;

    fn hip_model() -> GpuCostModel {
        GpuCostModel::new(DeviceSpec::mi250x_gcd(), 2.0, Precision::Single)
    }

    fn a100_model() -> GpuCostModel {
        GpuCostModel::new(DeviceSpec::a100(), 0.05, Precision::Single)
    }

    fn cpu_model() -> CpuCostModel {
        CpuCostModel::new(DeviceSpec::epyc_trento(), 2, SweepConfig::default(), Precision::Single)
    }

    /// Final unitary of `fused` must match the unfused reference.
    fn assert_equivalent(circuit: &Circuit, fused: &FusedCircuit) {
        use qsim_core::kernels::apply_gate_seq;
        use qsim_core::StateVector;

        let mut reference = StateVector::<f64>::new(circuit.num_qubits);
        for op in &circuit.ops {
            if op.is_measurement() {
                continue;
            }
            let (qs, m) = op.sorted_matrix::<f64>().unwrap();
            apply_gate_seq(&mut reference, &qs, &m);
        }
        let mut state = StateVector::<f64>::new(circuit.num_qubits);
        for op in &fused.ops {
            if let FusedOp::Unitary(g) = op {
                apply_gate_seq(&mut state, &g.qubits, &g.matrix);
            }
        }
        let diff = reference.max_abs_diff(&state);
        assert!(diff < 1e-12, "cost-planned circuit diverges by {diff}");
    }

    #[test]
    fn cost_plans_are_equivalent_across_models_and_widths() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(10, 8, 7));
        for f in 2..=6 {
            assert_equivalent(&c, &fuse_with_model(&c, f, &hip_model()));
            assert_equivalent(&c, &fuse_with_model(&c, f, &a100_model()));
            assert_equivalent(&c, &fuse_with_model(&c, f, &cpu_model()));
        }
    }

    #[test]
    fn auto_plans_are_equivalent() {
        let c = library::random_dense(8, 60, 11);
        assert_equivalent(&c, &fuse_auto(&c, &hip_model()));
        assert_equivalent(&c, &fuse_auto(&c, &a100_model()));
        assert_equivalent(&c, &fuse_auto(&c, &cpu_model()));
    }

    #[test]
    fn cost_plan_accounts_every_source_gate() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(12, 8, 9));
        let (one, two, _) = c.gate_counts();
        for f in 2..=6 {
            let s = fuse_with_model(&c, f, &hip_model()).stats();
            assert_eq!(s.source_gates, one + two, "f={f}");
        }
    }

    #[test]
    fn cost_never_predicted_worse_than_greedy() {
        // The planner only declines merges the model says are harmful, so
        // by its own metric it must not lose to greedy (acceptance bound:
        // within 2%; in practice it should win or tie).
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(14, 10, 5));
        for model in [&hip_model() as &dyn FusionCostModel, &a100_model()] {
            for f in 2..=6 {
                let greedy = model.plan_cost(&fuse(&c, f));
                let cost = model.plan_cost(&fuse_with_model(&c, f, model));
                assert!(
                    cost <= greedy * 1.02,
                    "f={f} {}: cost-planned {cost} vs greedy {greedy}",
                    model.name()
                );
            }
        }
    }

    #[test]
    fn hip_caps_chosen_fusion_width_below_a100() {
        // The Figure 9 asymmetry must be visible in Auto's choice. Use a
        // low-qubit-heavy workload on a large state: every target sits in
        // the Low-kernel range, where the HIP-like model's per-low-qubit
        // traffic overhead grows with the fused width (the staging tile)
        // and makes the widest budget a loss, while the A100-like model
        // keeps profiting from fewer passes.
        let dense = library::random_dense(6, 40, 3);
        let mut c = Circuit::new(20);
        c.ops.clone_from(&dense.ops);
        let hip = fuse_auto(&c, &hip_model());
        let a100 = fuse_auto(&c, &a100_model());
        assert!(
            hip.max_fused_qubits < a100.max_fused_qubits,
            "hip chose {} which should be below a100's {}",
            hip.max_fused_qubits,
            a100.max_fused_qubits
        );
        // The cap binds the gates actually built: hip never builds a gate
        // as wide as a100's budget (a100's planner may still decline its
        // widest merges gate-by-gate, so compare against the budget).
        let widest = |f: &FusedCircuit| f.unitaries().map(FusedGate::width).max().unwrap();
        assert!(widest(&hip) <= hip.max_fused_qubits);
        assert!(widest(&hip) < a100.max_fused_qubits);
    }

    #[test]
    fn auto_matches_best_fixed_width_by_model_metric() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(12, 10, 21));
        for model in [&hip_model() as &dyn FusionCostModel, &a100_model(), &cpu_model()] {
            let auto = model.plan_cost(&fuse_auto(&c, model));
            let best_fixed =
                (2..=6).map(|f| model.plan_cost(&fuse(&c, f))).fold(f64::INFINITY, f64::min);
            assert!(
                auto <= best_fixed * (1.0 + AUTO_TOLERANCE),
                "{}: auto {auto} vs best fixed greedy {best_fixed}",
                model.name()
            );
        }
    }

    #[test]
    fn measurements_stay_barriers_under_cost_planning() {
        let mut c = Circuit::new(1);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Measurement, &[0]);
        c.add(2, GateKind::X, &[0]);
        let fused = fuse_with_model(&c, 4, &a100_model());
        assert_eq!(fused.ops.len(), 3);
        assert!(matches!(fused.ops[1], FusedOp::Measurement { .. }));
        assert_eq!(fused.num_unitaries(), 2);
    }

    #[test]
    fn zero_lookahead_degenerates_to_local_rule() {
        let c = library::random_dense(8, 40, 3);
        let fused = fuse_with_lookahead(&c, 4, &hip_model(), 0);
        assert_equivalent(&c, &fused);
    }

    #[test]
    #[should_panic(expected = "max_fused_qubits")]
    fn out_of_range_budget_rejected() {
        let _ = fuse_with_model(&library::bell(), 9, &a100_model());
    }

    #[test]
    fn strategy_labels_round_trip() {
        for s in FusionStrategy::ALL {
            assert_eq!(s.label().parse::<FusionStrategy>().unwrap(), s);
            assert_eq!(format!("{s}"), s.label());
        }
        assert!("best".parse::<FusionStrategy>().is_err());
    }

    #[test]
    fn plan_reports_strategy_and_cost() {
        let c = library::bell();
        let model = a100_model();
        for s in FusionStrategy::ALL {
            let p = plan(&c, s, 2, &model);
            assert_eq!(p.strategy, s);
            assert!(p.predicted_cost_seconds > 0.0);
            assert_eq!(p.predicted_cost_seconds, model.plan_cost(&p.fused));
        }
    }

    #[test]
    fn greedy_and_cost_share_plan_shape_invariants() {
        let c = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(10, 6, 3));
        let fused = fuse_with_model(&c, 4, &hip_model());
        for g in fused.unitaries() {
            assert!(g.matrix.is_unitary(1e-10));
            assert!(g.qubits.len() <= 4);
            assert!(g.qubits.windows(2).all(|w| w[0] < w[1]));
        }
    }
}
