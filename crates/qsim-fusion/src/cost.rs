//! Per-backend fusion cost models.
//!
//! A [`FusionCostModel`] prices one fused-gate pass over the state, in
//! modeled seconds, so the planner in [`crate::planner`] can compare a
//! candidate merge against leaving a gate in its own pass. The two
//! built-in models mirror how the backends charge the simulated timeline:
//!
//! * [`CpuCostModel`] prices from the **SIMD gate class**
//!   ([`qsim_core::kernels::classify_gate_at`]: lane vs strided path at
//!   the active ISA's lane-qubit boundary), the matrix width (the
//!   `2^k × 2^k` matrix-vector arithmetic), and **sweep-block locality**
//!   ([`qsim_core::sweep`]): gates whose targets fit a cache block join a
//!   blocked run and pay only a fraction of the full-state traffic.
//! * [`GpuCostModel`] reuses [`gpu_model::perf::kernel_time`] /
//!   [`gpu_model::perf::memcpy_time`] with qsim's High/Low kernel split
//!   ([`qsim_core::kernels::fused_gate_work`] plus the 32- vs 64-thread
//!   block geometry), so a HIP-like [`DeviceSpec`] — 64-lane wavefronts
//!   half-filled by 32-thread `ApplyGateL_Kernel` blocks and a large
//!   low-qubit traffic overhead — penalizes wide fused gates exactly the
//!   way the paper's Figure 9 shows, while an A100-like spec does not.
//!
//! Backends construct the matching model from their flavor knobs (see
//! `qsim-backends`); the models here take plain parameters so this crate
//! stays below the backend layer in the dependency graph.

use gpu_model::perf::{kernel_time, memcpy_time, LaunchProfile};
use gpu_model::specs::DeviceSpec;
use qsim_core::kernels::{classify_gate_at, fused_gate_work, KernelClass};
use qsim_core::sweep::{is_block_local, PassTracker, SweepConfig};
use qsim_core::types::Precision;

use crate::{FusedCircuit, FusedOp};

/// Prices fused-gate passes for one backend, in modeled seconds.
///
/// Implementations must be consistent under growth: the planner accounts
/// a merge as `gate_cost(union) − gate_cost(existing)`, so the total cost
/// of a plan telescopes to [`FusionCostModel::plan_cost`]'s default sum
/// regardless of the merge order that produced it.
pub trait FusionCostModel: Send + Sync {
    /// Stable lowercase model name, for reports.
    fn name(&self) -> &'static str;

    /// Modeled seconds for one fused-gate pass on the sorted `qubits` of
    /// an `num_qubits`-qubit state, including per-pass fixed overheads
    /// (launch latency, matrix upload) so fewer, denser passes are
    /// rewarded.
    fn gate_cost(&self, num_qubits: usize, qubits: &[usize]) -> f64;

    /// Modeled seconds for a whole plan: the sum of its unitary passes.
    fn plan_cost(&self, plan: &FusedCircuit) -> f64 {
        plan.unitaries().map(|g| self.gate_cost(plan.num_qubits, &g.qubits)).sum()
    }

    /// Modeled main-memory traffic of one fused-gate pass, bytes. The
    /// default is a conservative full-state read + write at double
    /// precision; the built-in models override it with the same calibrated
    /// work accounting their `gate_cost` prices.
    fn gate_traffic(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let _ = qubits;
        2.0 * 16.0 * (1u64 << num_qubits) as f64
    }

    /// Modeled traffic and duration for a whole plan — the pair whose
    /// ratio is the plan's sustained bytes/s demand, which is what the
    /// serve layer's bandwidth-aware admission ledger charges per running
    /// job (qHiPSTER-style bandwidth-centric accounting).
    fn plan_traffic(&self, plan: &FusedCircuit) -> TrafficEstimate {
        TrafficEstimate {
            bytes: plan.unitaries().map(|g| self.gate_traffic(plan.num_qubits, &g.qubits)).sum(),
            seconds: self.plan_cost(plan),
        }
    }
}

/// Modeled memory traffic of a fused plan: total bytes moved and the
/// modeled seconds they are spread over. See
/// [`FusionCostModel::plan_traffic`].
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct TrafficEstimate {
    /// Modeled bytes moved through main memory over the whole plan.
    pub bytes: f64,
    /// Modeled execution seconds of the plan ([`FusionCostModel::plan_cost`]).
    pub seconds: f64,
}

impl TrafficEstimate {
    /// Sustained memory-bandwidth demand while the plan executes, bytes/s
    /// (0 for an empty plan).
    pub fn bytes_per_second(&self) -> f64 {
        if self.seconds > 0.0 {
            self.bytes / self.seconds
        } else {
            0.0
        }
    }
}

/// Share of the full-state traffic charged to a sweep-block-local gate
/// when the surrounding run structure is unknown (the planner's
/// context-free [`FusionCostModel::gate_cost`]): roughly the mean of a
/// run-opening pass (full traffic) and a couple of joining gates
/// ([`SWEPT_JOIN_TRAFFIC_SHARE`] each).
const SWEPT_TRAFFIC_SHARE: f64 = 0.5;

/// Share of the full-state traffic charged to a gate that **joins** an
/// open cache-blocked run: the state is already streaming through cache
/// for the run, so only residual traffic remains (matrix loads, spilled
/// tiles). The backend's launch charging uses the same constant so a plan
/// priced here and a plan charged on the modeled timeline agree.
pub const SWEPT_JOIN_TRAFFIC_SHARE: f64 = 0.25;

/// In-register shuffle arithmetic per amplitude per lane-low target
/// qubit: a gate touching qubits below the ISA's lane boundary runs the
/// lane-Low permute kernels, whose `vpermps`/`vpermd` rearrangement is
/// real arithmetic on top of the matvec. Shared with the backend's launch
/// charging for the same reason as [`SWEPT_JOIN_TRAFFIC_SHARE`].
pub const LANE_SHUFFLE_FLOPS: f64 = 6.0;

/// Cost model for the host backend: SIMD lane class + matrix width +
/// cache-blocked sweep locality.
#[derive(Debug, Clone)]
pub struct CpuCostModel {
    /// The modeled socket (bandwidth, flop rate, per-pass latency).
    pub spec: DeviceSpec,
    /// Lane-qubit boundary of the active ISA at the working precision
    /// ([`qsim_core::simd::Isa::lane_qubits`]); targets below it resolve
    /// with in-register permutes.
    pub lane_qubits: usize,
    /// Sweep configuration the plan will execute under.
    pub sweep: SweepConfig,
    /// Fractional extra traffic per low target qubit (the CPU flavor's
    /// calibration: AVX permutes, caches absorb most of it).
    pub low_qubit_byte_overhead: f64,
    /// Rearrangement arithmetic per amplitude per low target qubit.
    pub shuffle_flops_per_low_qubit: f64,
    /// "Block" size of the OpenMP team, for the occupancy model.
    pub team_threads: u32,
    amp_bytes: usize,
    double_precision: bool,
}

impl CpuCostModel {
    /// Model for a host described by `spec`, with the SIMD lane boundary
    /// and sweep configuration the run will actually use. The traffic and
    /// shuffle calibration defaults to the CPU flavor's launch accounting
    /// (see `qsim-backends`).
    pub fn new(
        spec: DeviceSpec,
        lane_qubits: usize,
        sweep: SweepConfig,
        precision: Precision,
    ) -> CpuCostModel {
        CpuCostModel {
            spec,
            lane_qubits,
            sweep,
            low_qubit_byte_overhead: 0.06,
            shuffle_flops_per_low_qubit: 6.0,
            team_threads: 128,
            amp_bytes: precision.amplitude_bytes(),
            double_precision: precision == Precision::Double,
        }
    }

    /// One pass at an explicit traffic share — the same
    /// [`fused_gate_work`] + [`kernel_time`] pricing the CPU backend
    /// charges per launch, so planner and timeline agree by construction.
    /// The SIMD lane class decides the extra arithmetic: a lane-Low gate
    /// (any target inside the vector register) pays the in-register
    /// permute flops ([`LANE_SHUFFLE_FLOPS`]) per lane-low target on top
    /// of the matvec; a lane-High gate streams strided tiles with no
    /// rearrangement.
    fn pass_cost(&self, num_qubits: usize, qubits: &[usize], traffic_share: f64) -> f64 {
        let mut work = fused_gate_work(
            num_qubits,
            qubits,
            self.amp_bytes,
            self.low_qubit_byte_overhead,
            self.shuffle_flops_per_low_qubit,
        );
        if classify_gate_at(qubits, self.lane_qubits) == KernelClass::Low {
            let lane_low = qubits.iter().filter(|&&q| q < self.lane_qubits).count() as f64;
            work.flops += (1u64 << num_qubits) as f64 * lane_low * LANE_SHUFFLE_FLOPS;
        }
        work.bytes *= traffic_share;
        let profile = LaunchProfile::for_gate_grid(
            1u64 << num_qubits,
            self.team_threads,
            work.bytes,
            work.flops,
            self.double_precision,
        );
        kernel_time(&self.spec, &profile)
    }

    /// Modeled bytes of one pass at an explicit traffic share — the byte
    /// half of [`Self::pass_cost`]'s work accounting, kept separate so the
    /// admission ledger charges exactly the traffic the timeline prices.
    fn pass_traffic(&self, num_qubits: usize, qubits: &[usize], traffic_share: f64) -> f64 {
        fused_gate_work(
            num_qubits,
            qubits,
            self.amp_bytes,
            self.low_qubit_byte_overhead,
            self.shuffle_flops_per_low_qubit,
        )
        .bytes
            * traffic_share
    }

    fn block_qubits(&self, num_qubits: usize) -> usize {
        if self.sweep.enabled {
            self.sweep.block_qubits(num_qubits)
        } else {
            0
        }
    }
}

impl FusionCostModel for CpuCostModel {
    fn name(&self) -> &'static str {
        "cpu"
    }

    fn gate_cost(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        // Without run context, a block-local gate is priced at the
        // expected share of a blocked run's traffic.
        let traffic_share = if is_block_local(qubits, self.block_qubits(num_qubits)) {
            SWEPT_TRAFFIC_SHARE
        } else {
            1.0
        };
        self.pass_cost(num_qubits, qubits, traffic_share)
    }

    /// Run-aware plan pricing: walk the plan with the same
    /// [`PassTracker`] the backend's timeline charging uses, so a gate
    /// that joins an open cache-blocked run pays only
    /// [`SWEPT_JOIN_TRAFFIC_SHARE`] of the full-state traffic, exactly as
    /// it will be charged at launch time.
    fn plan_cost(&self, plan: &FusedCircuit) -> f64 {
        let mut tracker = PassTracker::new(&self.sweep, plan.num_qubits);
        let mut total = 0.0;
        for op in &plan.ops {
            match op {
                FusedOp::Unitary(g) => {
                    let share =
                        if tracker.on_gate(&g.qubits) { 1.0 } else { SWEPT_JOIN_TRAFFIC_SHARE };
                    total += self.pass_cost(plan.num_qubits, &g.qubits, share);
                }
                FusedOp::Measurement { .. } => tracker.on_barrier(),
            }
        }
        total
    }

    fn gate_traffic(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let traffic_share = if is_block_local(qubits, self.block_qubits(num_qubits)) {
            SWEPT_TRAFFIC_SHARE
        } else {
            1.0
        };
        self.pass_traffic(num_qubits, qubits, traffic_share)
    }

    /// Run-aware traffic: the same [`PassTracker`] walk as
    /// [`Self::plan_cost`], accumulating bytes and seconds in one pass so
    /// the ratio reflects what the timeline will actually charge.
    fn plan_traffic(&self, plan: &FusedCircuit) -> TrafficEstimate {
        let mut tracker = PassTracker::new(&self.sweep, plan.num_qubits);
        let mut est = TrafficEstimate::default();
        for op in &plan.ops {
            match op {
                FusedOp::Unitary(g) => {
                    let share =
                        if tracker.on_gate(&g.qubits) { 1.0 } else { SWEPT_JOIN_TRAFFIC_SHARE };
                    est.bytes += self.pass_traffic(plan.num_qubits, &g.qubits, share);
                    est.seconds += self.pass_cost(plan.num_qubits, &g.qubits, share);
                }
                FusedOp::Measurement { .. } => tracker.on_barrier(),
            }
        }
        est
    }
}

/// Cost model for the modeled GPU backends: the High/Low kernel split
/// priced through the same roofline ([`gpu_model::perf::kernel_time`])
/// the backend charges at launch time.
#[derive(Debug, Clone)]
pub struct GpuCostModel {
    /// The modeled device.
    pub spec: DeviceSpec,
    /// Threads per block for `ApplyGateH_Kernel`-class launches.
    pub tpb_high: u32,
    /// Threads per block for `ApplyGateL_Kernel`-class launches — qsim's
    /// fixed 32, the half-wavefront of the paper on AMD.
    pub tpb_low: u32,
    /// Fractional extra traffic per low target qubit (the flavor's
    /// `low_qubit_byte_overhead`; HIP ≫ CUDA).
    pub low_qubit_byte_overhead: f64,
    /// Rearrangement arithmetic per amplitude per low qubit.
    pub shuffle_flops_per_low_qubit: f64,
    /// Whether each pass ships its fused matrix over the host↔device
    /// link first ([`gpu_model::perf::memcpy_time`]).
    pub uploads_matrices: bool,
    amp_bytes: usize,
    double_precision: bool,
}

impl GpuCostModel {
    /// Model with qsim's fixed block geometry (64/32 threads) and the
    /// given per-low-qubit traffic overhead; tune the public fields for
    /// other flavors.
    pub fn new(spec: DeviceSpec, low_qubit_byte_overhead: f64, precision: Precision) -> Self {
        GpuCostModel {
            spec,
            tpb_high: 64,
            tpb_low: 32,
            low_qubit_byte_overhead,
            shuffle_flops_per_low_qubit: 4.0,
            uploads_matrices: true,
            amp_bytes: precision.amplitude_bytes(),
            double_precision: precision == Precision::Double,
        }
    }
}

impl FusionCostModel for GpuCostModel {
    fn name(&self) -> &'static str {
        "gpu"
    }

    fn gate_cost(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let len = 1u64 << num_qubits;
        let work = fused_gate_work(
            num_qubits,
            qubits,
            self.amp_bytes,
            self.low_qubit_byte_overhead,
            self.shuffle_flops_per_low_qubit,
        );
        let tpb = match qsim_core::kernels::classify_gate(qubits) {
            KernelClass::High => self.tpb_high,
            KernelClass::Low => self.tpb_low,
        };
        let profile =
            LaunchProfile::for_gate_grid(len, tpb, work.bytes, work.flops, self.double_precision);
        let mut t = kernel_time(&self.spec, &profile);
        if self.uploads_matrices {
            let dim = 1u64 << qubits.len();
            t += memcpy_time(&self.spec, dim * dim * self.amp_bytes as u64);
        }
        t
    }

    fn gate_traffic(&self, num_qubits: usize, qubits: &[usize]) -> f64 {
        let mut bytes = fused_gate_work(
            num_qubits,
            qubits,
            self.amp_bytes,
            self.low_qubit_byte_overhead,
            self.shuffle_flops_per_low_qubit,
        )
        .bytes;
        if self.uploads_matrices {
            let dim = 1u64 << qubits.len();
            bytes += (dim * dim * self.amp_bytes as u64) as f64;
        }
        bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hip_model() -> GpuCostModel {
        // The HIP flavor's calibration: MI250X GCD + the LDS-round-trip
        // low-qubit overhead (see qsim-backends::Flavor).
        GpuCostModel::new(DeviceSpec::mi250x_gcd(), 2.0, Precision::Single)
    }

    fn a100_model() -> GpuCostModel {
        GpuCostModel::new(DeviceSpec::a100(), 0.05, Precision::Single)
    }

    #[test]
    fn wider_low_gates_cost_hip_disproportionately() {
        // Widening a low-qubit fused gate from 2 to 5 qubits should grow
        // the HIP cost far faster than the A100 cost — the Figure 9
        // asymmetry the planner exploits.
        let hip = hip_model();
        let a100 = a100_model();
        let hip_ratio = hip.gate_cost(26, &[0, 1, 2, 3, 4]) / hip.gate_cost(26, &[0, 1]);
        let a100_ratio = a100.gate_cost(26, &[0, 1, 2, 3, 4]) / a100.gate_cost(26, &[0, 1]);
        assert!(
            hip_ratio > 2.0 * a100_ratio,
            "hip ratio {hip_ratio} should dwarf a100 ratio {a100_ratio}"
        );
    }

    #[test]
    fn high_gates_cost_the_same_class_on_both_devices() {
        // A gate with no low targets pays no rearrangement overhead, so
        // widening it is similarly cheap on both devices.
        let hip = hip_model();
        let a100 = a100_model();
        let hr = hip.gate_cost(26, &[10, 14, 20, 23]) / hip.gate_cost(26, &[10, 14]);
        let ar = a100.gate_cost(26, &[10, 14, 20, 23]) / a100.gate_cost(26, &[10, 14]);
        assert!((hr / ar - 1.0).abs() < 0.25, "hip {hr} vs a100 {ar}");
    }

    #[test]
    fn gpu_cost_includes_upload_and_launch_floor() {
        let mut m = a100_model();
        let with_upload = m.gate_cost(20, &[8, 12]);
        m.uploads_matrices = false;
        let without = m.gate_cost(20, &[8, 12]);
        assert!(with_upload > without);
        assert!(without > m.spec.launch_latency_us * 1e-6);
    }

    #[test]
    fn cpu_model_discounts_block_local_gates() {
        let spec = DeviceSpec::epyc_trento();
        let swept = CpuCostModel::new(spec.clone(), 2, SweepConfig::default(), Precision::Single);
        let unswept = CpuCostModel::new(spec, 2, SweepConfig::disabled(), Precision::Single);
        // Qubits below the block boundary (16) are cheaper under the sweep…
        assert!(swept.gate_cost(24, &[3, 7]) < unswept.gate_cost(24, &[3, 7]));
        // …while a gate crossing the block boundary pays the full pass.
        assert_eq!(swept.gate_cost(24, &[3, 20]), unswept.gate_cost(24, &[3, 20]));
    }

    #[test]
    fn cpu_model_prices_lane_shuffle_arithmetic() {
        let spec = DeviceSpec::epyc_trento();
        let m = CpuCostModel::new(spec, 3, SweepConfig::disabled(), Precision::Single);
        // Same width: a gate with lane-low targets runs the lane-Low
        // permute kernels and pays the in-register rearrangement flops
        // (plus the low-qubit staging traffic); a gate entirely above the
        // lane boundary streams strided tiles with neither surcharge.
        let low = m.gate_cost(24, &[0, 1, 2, 16, 17, 18]);
        let high = m.gate_cost(24, &[10, 12, 14, 16, 18, 20]);
        assert!(low > high, "lane-low {low} should exceed strided {high}");
        // More lane-low targets at equal width cost more.
        let fewer = m.gate_cost(24, &[0, 8, 9, 16, 17, 18]);
        assert!(low > fewer, "3 lane-low targets {low} vs 1 {fewer}");
    }

    #[test]
    fn plan_traffic_tracks_plan_cost_and_scales_with_state() {
        use qsim_circuit::library;
        let fused24 = crate::fuse(&library::ghz(24), 2);
        let fused20 = crate::fuse(&library::ghz(20), 2);
        let m = CpuCostModel::new(
            DeviceSpec::epyc_trento(),
            2,
            SweepConfig::default(),
            Precision::Single,
        );
        let t24 = m.plan_traffic(&fused24);
        let t20 = m.plan_traffic(&fused20);
        // Seconds agree with the run-aware plan cost, bytes/s is a real rate,
        // and a 16×-larger state moves far more bytes per pass.
        assert_eq!(t24.seconds, m.plan_cost(&fused24));
        assert!(t24.bytes_per_second() > 0.0);
        assert!(t24.bytes > 8.0 * t20.bytes, "24q {} vs 20q {}", t24.bytes, t20.bytes);

        // The GPU model folds matrix-upload bytes into its traffic.
        let mut g = a100_model();
        let with_upload = g.gate_traffic(20, &[8, 12]);
        g.uploads_matrices = false;
        assert!(with_upload > g.gate_traffic(20, &[8, 12]));
    }

    #[test]
    fn plan_cost_sums_unitaries() {
        use qsim_circuit::library;
        let fused = crate::fuse(&library::bell(), 2);
        let m = a100_model();
        let total = m.plan_cost(&fused);
        let by_hand: f64 =
            fused.unitaries().map(|g| m.gate_cost(fused.num_qubits, &g.qubits)).sum();
        assert_eq!(total, by_hand);
        assert!(total > 0.0);
    }
}
