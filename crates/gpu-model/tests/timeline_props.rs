//! Property-based tests on the virtual timeline and the performance
//! model: scheduling invariants that every backend implicitly relies on.

use proptest::prelude::*;

use gpu_model::perf::{kernel_time, occupancy_factor, wave_utilization, LaunchProfile};
use gpu_model::specs::DeviceSpec;
use gpu_model::timeline::{StreamId, Timeline};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Items on one stream never overlap and preserve FIFO order.
    #[test]
    fn single_stream_is_fifo_and_non_overlapping(durations in prop::collection::vec(0.0f64..1e4, 1..50)) {
        let mut tl = Timeline::new();
        let mut last_end = 0.0;
        for d in durations {
            let (s, e) = tl.schedule(StreamId::DEFAULT, d).unwrap();
            prop_assert!(s >= last_end - 1e-9);
            prop_assert!((e - s - d).abs() < 1e-9);
            last_end = e;
        }
        prop_assert!((tl.synchronize() - last_end).abs() < 1e-9);
    }

    /// The device makespan equals the max over per-stream busy spans when
    /// streams are independent.
    #[test]
    fn independent_streams_overlap_fully(
        a in prop::collection::vec(0.0f64..1e3, 1..20),
        b in prop::collection::vec(0.0f64..1e3, 1..20),
    ) {
        let mut tl = Timeline::new();
        let s2 = tl.create_stream();
        for &d in &a { tl.schedule(StreamId::DEFAULT, d).unwrap(); }
        for &d in &b { tl.schedule(s2, d).unwrap(); }
        let total_a: f64 = a.iter().sum();
        let total_b: f64 = b.iter().sum();
        prop_assert!((tl.synchronize() - total_a.max(total_b)).abs() < 1e-6);
    }

    /// Events never move a stream backwards in time.
    #[test]
    fn event_waits_are_monotone(
        pre in 0.0f64..1e3,
        other in 0.0f64..1e3,
        post in 0.0f64..1e3,
    ) {
        let mut tl = Timeline::new();
        let s2 = tl.create_stream();
        tl.schedule(StreamId::DEFAULT, pre).unwrap();
        let ev = tl.record_event(StreamId::DEFAULT).unwrap();
        tl.schedule(s2, other).unwrap();
        let before = tl.sync_stream(s2).unwrap();
        tl.stream_wait_event(s2, ev).unwrap();
        let (start, _) = tl.schedule(s2, post).unwrap();
        prop_assert!(start + 1e-9 >= before.min(pre));
        prop_assert!(start + 1e-9 >= pre, "waited work cannot start before the event");
        prop_assert!(start + 1e-9 >= other, "stream order is preserved");
    }

    /// Kernel time is monotone in both bytes and flops, and never less
    /// than the launch latency.
    #[test]
    fn kernel_time_is_monotone(
        bytes in 0.0f64..1e12,
        flops in 0.0f64..1e14,
        extra in 1.0f64..3.0,
        tpb in prop::sample::select(vec![32u32, 64, 128, 256]),
        blocks in 1u64..1_000_000,
    ) {
        for spec in [DeviceSpec::a100(), DeviceSpec::mi250x_gcd(), DeviceSpec::epyc_trento()] {
            if tpb > spec.max_threads_per_block { continue; }
            let p = LaunchProfile { bytes, flops, blocks, threads_per_block: tpb, double_precision: false };
            let t = kernel_time(&spec, &p);
            prop_assert!(t >= spec.launch_latency_us * 1e-6 - 1e-15);
            let t_more_bytes = kernel_time(&spec, &LaunchProfile { bytes: bytes * extra, ..p });
            let t_more_flops = kernel_time(&spec, &LaunchProfile { flops: flops * extra, ..p });
            prop_assert!(t_more_bytes + 1e-15 >= t);
            prop_assert!(t_more_flops + 1e-15 >= t);
        }
    }

    /// Wavefront utilization is in (0, 1] and 1 at multiples of the width.
    #[test]
    fn utilization_bounds(tpb in 1u32..2048, width in prop::sample::select(vec![8u32, 32, 64])) {
        let u = wave_utilization(tpb, width);
        prop_assert!(u > 0.0 && u <= 1.0);
        if tpb % width == 0 {
            prop_assert!((u - 1.0).abs() < 1e-12);
        }
    }

    /// Occupancy is in (0, 1] and non-decreasing in block count.
    #[test]
    fn occupancy_bounds(blocks in 1u64..10_000_000) {
        let spec = DeviceSpec::mi250x_gcd();
        let o = occupancy_factor(&spec, blocks);
        prop_assert!(o > 0.0 && o <= 1.0);
        prop_assert!(occupancy_factor(&spec, blocks + 1) + 1e-15 >= o);
    }
}

#[test]
fn double_precision_never_faster_for_same_work() {
    for spec in [DeviceSpec::a100(), DeviceSpec::mi250x_gcd(), DeviceSpec::epyc_trento()] {
        let p = LaunchProfile {
            bytes: 1e9,
            flops: 1e11,
            blocks: 1 << 20,
            threads_per_block: 64,
            double_precision: false,
        };
        let sp = kernel_time(&spec, &p);
        let dp = kernel_time(&spec, &LaunchProfile { double_precision: true, ..p });
        assert!(dp + 1e-15 >= sp, "{}", spec.name);
    }
}
