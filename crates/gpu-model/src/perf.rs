//! The analytic kernel performance model.
//!
//! For a kernel that moves `bytes` to/from device memory and executes
//! `flops` floating-point operations with grid geometry
//! `(blocks, threads_per_block)`:
//!
//! ```text
//! t = launch_latency
//!   + max( bytes / (BW_peak · eff_mem),  flops / (FLOPS_peak · eff_flop) )
//!
//! eff_mem  = mem_efficiency · (1 − wave_mem_sensitivity·(1 − U)) · O
//! eff_flop = flop_efficiency · U · O
//! ```
//!
//! where `U` is the **wavefront utilization** — the fraction of SIMT lanes
//! a block actually fills, `threads_per_block / (ceil(tpb/W)·W)` for
//! wavefront width `W` — and `O` is an occupancy factor that derates tiny
//! grids. `U` is the paper's central architectural effect: qsim's
//! `ApplyGateL_Kernel` keeps 32-thread blocks after hipification, which is
//! one full CUDA warp (`U = 1` on the A100) but **half** an AMD wavefront
//! (`U = 0.5` on the MI250X), and enlarging the block "necessitates a
//! significant algorithmic overhaul" because it would exceed the shared
//! memory layout (paper §4). Fusion routes ever more work to exactly that
//! kernel, which is how the A100↔MI250X gap grows from ~5 % at
//! `max_fused_qubits = 2` to ~44 % at 4 (paper Figure 9).

use crate::specs::DeviceSpec;

/// Work and geometry of one kernel launch, the model's input.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LaunchProfile {
    /// Bytes read from + written to device memory.
    pub bytes: f64,
    /// Floating-point operations executed.
    pub flops: f64,
    /// Grid size in blocks.
    pub blocks: u64,
    /// Threads per block.
    pub threads_per_block: u32,
    /// Whether the kernel runs in double precision (selects the peak
    /// flops rate).
    pub double_precision: bool,
}

impl LaunchProfile {
    /// Profile for qsim's gate-kernel grid convention: each thread owns
    /// two amplitudes, so an `len`-amplitude pass launches
    /// `max(len / 2 / tpb, 1)` blocks. Shared by the backend launch
    /// planner and the fusion cost models so both price the same grid.
    pub fn for_gate_grid(
        len: u64,
        threads_per_block: u32,
        bytes: f64,
        flops: f64,
        double_precision: bool,
    ) -> LaunchProfile {
        LaunchProfile {
            bytes,
            flops,
            blocks: (len / 2 / u64::from(threads_per_block)).max(1),
            threads_per_block,
            double_precision,
        }
    }
}

/// Wavefront (warp) utilization of a block: lanes filled over lanes
/// allocated, `tpb / (ceil(tpb/W)·W)`.
pub fn wave_utilization(threads_per_block: u32, wavefront_width: u32) -> f64 {
    assert!(threads_per_block > 0 && wavefront_width > 0);
    let waves = threads_per_block.div_ceil(wavefront_width);
    threads_per_block as f64 / (waves * wavefront_width) as f64
}

/// Occupancy derating: grids smaller than
/// `compute_units × occupancy_blocks_per_cu` cannot keep the device busy.
pub fn occupancy_factor(spec: &DeviceSpec, blocks: u64) -> f64 {
    let full = (spec.compute_units as u64 * spec.occupancy_blocks_per_cu as u64).max(1);
    ((blocks as f64) / (full as f64)).min(1.0)
}

/// Predicted kernel duration in **seconds** (excluding queueing; the
/// timeline adds stream serialization).
pub fn kernel_time(spec: &DeviceSpec, p: &LaunchProfile) -> f64 {
    assert!(p.bytes >= 0.0 && p.flops >= 0.0, "work must be non-negative");
    let u = wave_utilization(p.threads_per_block, spec.wavefront_width);
    let o = occupancy_factor(spec, p.blocks);

    let eff_mem = spec.mem_efficiency * (1.0 - spec.wave_mem_sensitivity * (1.0 - u)) * o;
    let eff_flop = spec.flop_efficiency * u * o;

    let t_mem = if p.bytes > 0.0 { p.bytes / (spec.mem_bw_bytes_s() * eff_mem) } else { 0.0 };
    let t_flop = if p.flops > 0.0 {
        p.flops / (spec.flops_per_s(p.double_precision) * eff_flop)
    } else {
        0.0
    };
    spec.launch_latency_us * 1e-6 + t_mem.max(t_flop)
}

/// Predicted duration of a host↔device copy of `bytes` (seconds).
pub fn memcpy_time(spec: &DeviceSpec, bytes: u64) -> f64 {
    if spec.h2d_bw_bytes_s().is_infinite() {
        return 0.0;
    }
    // Small fixed cost per async copy (driver + DMA setup).
    2.0e-6 + bytes as f64 / spec.h2d_bw_bytes_s()
}

/// Predicted duration of a device-to-device copy (through HBM: read +
/// write).
pub fn memcpy_d2d_time(spec: &DeviceSpec, bytes: u64) -> f64 {
    spec.launch_latency_us * 1e-6
        + (2.0 * bytes as f64) / (spec.mem_bw_bytes_s() * spec.mem_efficiency)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn big_grid() -> u64 {
        1 << 20
    }

    #[test]
    fn wave_utilization_cases() {
        assert_eq!(wave_utilization(32, 32), 1.0);
        assert_eq!(wave_utilization(64, 32), 1.0);
        assert_eq!(wave_utilization(32, 64), 0.5);
        assert_eq!(wave_utilization(64, 64), 1.0);
        assert_eq!(wave_utilization(96, 64), 0.75);
        assert_eq!(wave_utilization(1, 64), 1.0 / 64.0);
    }

    #[test]
    fn the_papers_core_asymmetry() {
        // A 32-thread-block kernel (ApplyGateL as hipified) fills a CUDA
        // warp but half an AMD wavefront.
        let a100 = DeviceSpec::a100();
        let mi = DeviceSpec::mi250x_gcd();
        assert_eq!(wave_utilization(32, a100.wavefront_width), 1.0);
        assert_eq!(wave_utilization(32, mi.wavefront_width), 0.5);
    }

    #[test]
    fn memory_bound_kernel_time_scales_with_bytes() {
        let spec = DeviceSpec::a100();
        let base = LaunchProfile {
            bytes: 1e9,
            flops: 1e6,
            blocks: big_grid(),
            threads_per_block: 64,
            double_precision: false,
        };
        let t1 = kernel_time(&spec, &base);
        let t2 = kernel_time(&spec, &LaunchProfile { bytes: 2e9, ..base });
        let launch = spec.launch_latency_us * 1e-6;
        assert!(((t2 - launch) / (t1 - launch) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn compute_bound_kernel_uses_flop_path() {
        let spec = DeviceSpec::a100();
        let p = LaunchProfile {
            bytes: 1.0,
            flops: 1e12,
            blocks: big_grid(),
            threads_per_block: 64,
            double_precision: false,
        };
        let t = kernel_time(&spec, &p);
        let expected =
            spec.launch_latency_us * 1e-6 + 1e12 / (spec.flops_per_s(false) * spec.flop_efficiency);
        assert!((t - expected).abs() / expected < 1e-9);
    }

    #[test]
    fn double_precision_uses_dp_peak() {
        let spec = DeviceSpec::epyc_trento();
        let p = LaunchProfile {
            bytes: 0.0,
            flops: 1e12,
            blocks: 1,
            threads_per_block: 128,
            double_precision: false,
        };
        let sp = kernel_time(&spec, &p);
        let dp = kernel_time(&spec, &LaunchProfile { double_precision: true, ..p });
        assert!(dp > sp, "DP flops must be slower on the CPU model");
    }

    #[test]
    fn underfilled_wavefront_slows_hip_more_than_cuda() {
        let a100 = DeviceSpec::a100();
        let mi = DeviceSpec::mi250x_gcd();
        let mk = |tpb| LaunchProfile {
            bytes: 1e9,
            flops: 1e6,
            blocks: big_grid(),
            threads_per_block: tpb,
            double_precision: false,
        };
        // On the A100, 32 vs 64 threads/block makes no difference.
        let a_32 = kernel_time(&a100, &mk(32));
        let a_64 = kernel_time(&a100, &mk(64));
        assert!((a_32 - a_64).abs() < 1e-12);
        // On the MI250X, 32-thread blocks lose the spec's
        // wave_mem_sensitivity share of half the bandwidth.
        let m_32 = kernel_time(&mi, &mk(32));
        let m_64 = kernel_time(&mi, &mk(64));
        let launch = mi.launch_latency_us * 1e-6;
        let expected_ratio = 1.0 / (1.0 - mi.wave_mem_sensitivity * 0.5);
        let measured_ratio = (m_32 - launch) / (m_64 - launch);
        assert!(measured_ratio > 1.0, "m_32={m_32} m_64={m_64}");
        assert!((measured_ratio - expected_ratio).abs() < 1e-9);
    }

    #[test]
    fn occupancy_derates_small_grids() {
        let spec = DeviceSpec::a100();
        let full = spec.compute_units as u64 * spec.occupancy_blocks_per_cu as u64;
        assert_eq!(occupancy_factor(&spec, full), 1.0);
        assert_eq!(occupancy_factor(&spec, full * 10), 1.0);
        assert!((occupancy_factor(&spec, full / 2) - 0.5).abs() < 1e-12);
        let p = |blocks| LaunchProfile {
            bytes: 1e9,
            flops: 0.0,
            blocks,
            threads_per_block: 64,
            double_precision: false,
        };
        assert!(kernel_time(&spec, &p(full / 4)) > kernel_time(&spec, &p(full)));
    }

    #[test]
    fn launch_latency_floors_empty_kernels() {
        let spec = DeviceSpec::mi250x_gcd();
        let p = LaunchProfile {
            bytes: 0.0,
            flops: 0.0,
            blocks: 1,
            threads_per_block: 64,
            double_precision: false,
        };
        assert_eq!(kernel_time(&spec, &p), spec.launch_latency_us * 1e-6);
    }

    #[test]
    fn memcpy_times() {
        let spec = DeviceSpec::a100();
        let t = memcpy_time(&spec, 24 * 1024 * 1024 * 1024);
        assert!((t - 1.0).abs() < 0.01, "24 GiB over 24 GiB/s ≈ 1 s, got {t}");
        // CPU "device" copies are free (same memory).
        assert_eq!(memcpy_time(&DeviceSpec::epyc_trento(), 1 << 30), 0.0);
        // D2D pays read+write.
        let d2d = memcpy_d2d_time(&spec, 1 << 30);
        assert!(d2d > 0.0);
    }
}
