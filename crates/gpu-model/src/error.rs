//! Error codes of the simulated runtime, mirroring `hipError_t` /
//! `cudaError_t`.

use std::fmt;

/// Runtime error, the analogue of a non-success `hipError_t`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GpuError {
    /// Allocation exceeds remaining device memory
    /// (`hipErrorOutOfMemory`).
    OutOfMemory { requested_bytes: u64, free_bytes: u64 },
    /// Kernel launch geometry is invalid for the device
    /// (`hipErrorInvalidConfiguration`): zero-sized grid/block, block
    /// larger than the device maximum, or static shared memory exceeding
    /// the per-block limit.
    InvalidLaunch(String),
    /// An operation referenced an unknown stream or event
    /// (`hipErrorInvalidHandle`).
    InvalidHandle(String),
    /// Host/device copy size mismatch (`hipErrorInvalidValue`).
    InvalidValue(String),
}

impl fmt::Display for GpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GpuError::OutOfMemory { requested_bytes, free_bytes } => write!(
                f,
                "out of device memory: requested {requested_bytes} B, {free_bytes} B free"
            ),
            GpuError::InvalidLaunch(m) => write!(f, "invalid kernel launch: {m}"),
            GpuError::InvalidHandle(m) => write!(f, "invalid handle: {m}"),
            GpuError::InvalidValue(m) => write!(f, "invalid value: {m}"),
        }
    }
}

impl std::error::Error for GpuError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = GpuError::OutOfMemory { requested_bytes: 100, free_bytes: 10 };
        assert!(e.to_string().contains("requested 100"));
        assert!(GpuError::InvalidLaunch("block too big".into())
            .to_string()
            .contains("block too big"));
    }
}
