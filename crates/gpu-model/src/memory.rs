//! Device memory: typed buffers drawn from a capacity-tracked pool.
//!
//! Functionally a [`DeviceBuffer`] is host memory (the simulated GPU's
//! kernels run on the host), but allocation goes through the device's
//! [`MemoryPool`] so capacity limits behave like `hipMalloc`: a 31-qubit
//! double-precision state vector genuinely does not fit the modeled A100.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::GpuError;

/// Accounting for one device's memory.
#[derive(Debug)]
pub struct MemoryPool {
    capacity: u64,
    allocated: u64,
    peak: u64,
    num_allocs: u64,
}

impl MemoryPool {
    /// Pool with `capacity` bytes.
    pub fn new(capacity: u64) -> Self {
        MemoryPool { capacity, allocated: 0, peak: 0, num_allocs: 0 }
    }

    fn reserve(&mut self, bytes: u64) -> Result<(), GpuError> {
        let free = self.capacity - self.allocated;
        if bytes > free {
            return Err(GpuError::OutOfMemory { requested_bytes: bytes, free_bytes: free });
        }
        self.allocated += bytes;
        self.num_allocs += 1;
        self.peak = self.peak.max(self.allocated);
        Ok(())
    }

    fn release(&mut self, bytes: u64) {
        debug_assert!(self.allocated >= bytes, "double free or accounting bug");
        self.allocated = self.allocated.saturating_sub(bytes);
    }

    /// Bytes currently allocated.
    pub fn allocated(&self) -> u64 {
        self.allocated
    }

    /// High-water mark.
    pub fn peak(&self) -> u64 {
        self.peak
    }

    /// Bytes still available.
    pub fn free(&self) -> u64 {
        self.capacity - self.allocated
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Lifetime allocation count.
    pub fn num_allocs(&self) -> u64 {
        self.num_allocs
    }

    /// Restart high-water-mark tracking from the current allocation level
    /// (so a long-lived device can report a per-job peak).
    pub fn reset_peak(&mut self) {
        self.peak = self.allocated;
    }
}

/// A typed device allocation (`hipMalloc` result). Freed on drop.
#[derive(Debug)]
pub struct DeviceBuffer<T> {
    data: Vec<T>,
    bytes: u64,
    pool: Arc<Mutex<MemoryPool>>,
}

impl<T: Default + Clone> DeviceBuffer<T> {
    /// Allocate `len` elements, zero-initialised (the simulated runtime's
    /// `hipMalloc` + `hipMemset`).
    pub(crate) fn new(len: usize, pool: Arc<Mutex<MemoryPool>>) -> Result<Self, GpuError> {
        let bytes = (len * std::mem::size_of::<T>()) as u64;
        pool.lock().reserve(bytes)?;
        Ok(DeviceBuffer { data: vec![T::default(); len], bytes, pool })
    }
}

impl<T> DeviceBuffer<T> {
    /// Wrap an existing host allocation as a device buffer, charging the
    /// pool for its footprint — the recycled-buffer fast path of a state
    /// pool: no allocation, no zeroing, the **contents are whatever the
    /// previous owner left** and the caller must reinitialise them.
    ///
    /// On capacity exhaustion the vector is handed back alongside the
    /// error so the caller can return it to its pool instead of losing it.
    pub(crate) fn adopt(
        data: Vec<T>,
        pool: Arc<Mutex<MemoryPool>>,
    ) -> Result<Self, (GpuError, Vec<T>)> {
        let bytes = (data.len() * std::mem::size_of::<T>()) as u64;
        if let Err(e) = pool.lock().reserve(bytes) {
            return Err((e, data));
        }
        Ok(DeviceBuffer { data, bytes, pool })
    }

    /// Free the device allocation but keep the host memory: releases the
    /// pool accounting and returns the backing vector for recycling.
    pub fn into_vec(mut self) -> Vec<T> {
        let data = std::mem::take(&mut self.data);
        self.pool.lock().release(self.bytes);
        // Drop still runs; make it release nothing a second time.
        self.bytes = 0;
        data
    }
}

impl<T> DeviceBuffer<T> {
    /// Element count.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Allocation size in bytes.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Read access for kernels.
    pub fn as_slice(&self) -> &[T] {
        &self.data
    }

    /// Write access for kernels.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        &mut self.data
    }
}

impl<T> Drop for DeviceBuffer<T> {
    fn drop(&mut self) {
        self.pool.lock().release(self.bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(cap: u64) -> Arc<Mutex<MemoryPool>> {
        Arc::new(Mutex::new(MemoryPool::new(cap)))
    }

    #[test]
    fn adopt_and_into_vec_recycle_without_reallocating() {
        let p = pool(1024);
        let v: Vec<u64> = vec![7; 64];
        let addr = v.as_ptr();
        let b = DeviceBuffer::adopt(v, p.clone()).unwrap();
        // Same backing memory, same accounting as a fresh hipMalloc…
        assert_eq!(b.as_slice().as_ptr(), addr);
        assert_eq!(b.bytes(), 512);
        assert_eq!(p.lock().allocated(), 512);
        // …contents preserved (adopt must not zero)…
        assert_eq!(b.as_slice()[0], 7);
        // …and into_vec releases accounting while keeping the memory.
        let back = b.into_vec();
        assert_eq!(back.as_ptr(), addr);
        assert_eq!(p.lock().allocated(), 0);

        // Capacity exhaustion hands the vector back.
        let (err, recovered) = DeviceBuffer::adopt(vec![0u8; 2048], p.clone()).unwrap_err();
        assert!(matches!(err, GpuError::OutOfMemory { .. }));
        assert_eq!(recovered.len(), 2048);
        assert_eq!(p.lock().allocated(), 0);
    }

    #[test]
    fn peak_reset_restarts_high_water_mark() {
        let p = pool(1024);
        drop(DeviceBuffer::<u64>::new(64, p.clone()).unwrap());
        assert_eq!(p.lock().peak(), 512);
        p.lock().reset_peak();
        assert_eq!(p.lock().peak(), 0);
        drop(DeviceBuffer::<u64>::new(16, p.clone()).unwrap());
        assert_eq!(p.lock().peak(), 128);
    }

    #[test]
    fn alloc_and_free_accounting() {
        let p = pool(1024);
        {
            let b = DeviceBuffer::<u64>::new(64, p.clone()).unwrap();
            assert_eq!(b.len(), 64);
            assert_eq!(b.bytes(), 512);
            assert_eq!(p.lock().allocated(), 512);
            assert_eq!(p.lock().free(), 512);
        }
        assert_eq!(p.lock().allocated(), 0);
        assert_eq!(p.lock().peak(), 512);
        assert_eq!(p.lock().num_allocs(), 1);
    }

    #[test]
    fn oom_is_reported_with_sizes() {
        let p = pool(100);
        let err = DeviceBuffer::<u64>::new(64, p.clone()).unwrap_err();
        match err {
            GpuError::OutOfMemory { requested_bytes, free_bytes } => {
                assert_eq!(requested_bytes, 512);
                assert_eq!(free_bytes, 100);
            }
            e => panic!("wrong error {e:?}"),
        }
        // Failed allocation must not leak accounting.
        assert_eq!(p.lock().allocated(), 0);
    }

    #[test]
    fn buffers_are_zeroed() {
        let p = pool(1024);
        let b = DeviceBuffer::<f32>::new(8, p).unwrap();
        assert!(b.as_slice().iter().all(|&x| x == 0.0));
    }

    #[test]
    fn exact_fit_succeeds() {
        let p = pool(512);
        let b = DeviceBuffer::<u8>::new(512, p.clone()).unwrap();
        assert_eq!(p.lock().free(), 0);
        drop(b);
        assert_eq!(p.lock().free(), 512);
    }
}
