//! Trace hooks: every kernel launch and memcpy the runtime schedules is
//! reported to an optional [`TraceSink`]. The `qsim-trace` crate
//! implements a sink that exports Perfetto/Chrome trace-event JSON — the
//! rocprof + Perfetto UI workflow of the paper's Figures 1 and 6.

/// What kind of device activity a span records.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpanKind {
    /// A kernel execution.
    Kernel,
    /// `hipMemcpyAsync` host → device.
    MemcpyH2D,
    /// `hipMemcpyAsync` device → host.
    MemcpyD2H,
    /// Device-to-device copy.
    MemcpyD2D,
}

impl SpanKind {
    /// Label used in trace output.
    pub fn label(&self) -> &'static str {
        match self {
            SpanKind::Kernel => "kernel",
            SpanKind::MemcpyH2D => "hipMemcpyAsync (H2D)",
            SpanKind::MemcpyD2H => "hipMemcpyAsync (D2H)",
            SpanKind::MemcpyD2D => "hipMemcpy (D2D)",
        }
    }
}

/// One completed device activity on the simulated timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceSpan {
    /// Kernel symbol (e.g. `ApplyGateH_Kernel`) or memcpy label.
    pub name: String,
    /// Activity kind.
    pub kind: SpanKind,
    /// Stream the activity ran on.
    pub stream: usize,
    /// Simulated start time, µs.
    pub start_us: f64,
    /// Simulated duration, µs.
    pub dur_us: f64,
    /// Device name (trace "process").
    pub device: String,
}

/// Receiver for trace spans. Implementations must be thread-safe; the
/// runtime calls `record` inline at enqueue time.
pub trait TraceSink: Send + Sync {
    /// Record one completed span.
    fn record(&self, span: TraceSpan);
}

#[cfg(test)]
mod tests {
    use super::*;
    use parking_lot::Mutex;
    use std::sync::Arc;

    #[derive(Default)]
    struct VecSink(Mutex<Vec<TraceSpan>>);

    impl TraceSink for VecSink {
        fn record(&self, span: TraceSpan) {
            self.0.lock().push(span);
        }
    }

    #[test]
    fn sink_collects_spans() {
        let sink = Arc::new(VecSink::default());
        let s: Arc<dyn TraceSink> = sink.clone();
        s.record(TraceSpan {
            name: "ApplyGateH_Kernel".into(),
            kind: SpanKind::Kernel,
            stream: 0,
            start_us: 1.0,
            dur_us: 2.0,
            device: "test".into(),
        });
        assert_eq!(sink.0.lock().len(), 1);
        assert_eq!(sink.0.lock()[0].name, "ApplyGateH_Kernel");
    }

    #[test]
    fn labels() {
        assert_eq!(SpanKind::Kernel.label(), "kernel");
        assert!(SpanKind::MemcpyH2D.label().contains("H2D"));
        assert!(SpanKind::MemcpyD2H.label().contains("D2H"));
    }
}
