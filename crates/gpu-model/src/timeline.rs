//! Virtual device timeline: streams, events, and the simulated clock.
//!
//! Work items (kernels, async copies) enqueue onto *streams*; items in one
//! stream serialize, items in different streams overlap — which is how the
//! `hipMemcpyAsync` compute/copy overlap of the paper's Figures 1 & 6
//! arises. All times are **microseconds** of simulated device time (the
//! unit Perfetto traces use).

use crate::error::GpuError;

/// Handle to a stream (stream 0 is the default stream).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreamId(pub(crate) usize);

impl StreamId {
    /// The default stream.
    pub const DEFAULT: StreamId = StreamId(0);

    /// Raw index (for trace labeling).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Handle to a recorded event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EventId(usize);

/// The simulated clock.
#[derive(Debug, Clone)]
pub struct Timeline {
    /// Host-side enqueue cursor, µs. Work cannot start before the host
    /// has issued it.
    host_now_us: f64,
    /// Completion time of the last item per stream, µs.
    streams: Vec<f64>,
    /// Recorded event timestamps, µs.
    events: Vec<f64>,
}

impl Default for Timeline {
    fn default() -> Self {
        Self::new()
    }
}

impl Timeline {
    /// Fresh timeline with only the default stream, at t = 0.
    pub fn new() -> Self {
        Timeline { host_now_us: 0.0, streams: vec![0.0], events: Vec::new() }
    }

    /// Create an additional stream.
    pub fn create_stream(&mut self) -> StreamId {
        self.streams.push(self.host_now_us);
        StreamId(self.streams.len() - 1)
    }

    fn check_stream(&self, s: StreamId) -> Result<(), GpuError> {
        if s.0 < self.streams.len() {
            Ok(())
        } else {
            Err(GpuError::InvalidHandle(format!("stream {} does not exist", s.0)))
        }
    }

    /// Enqueue an item of `duration_us` on `stream`; returns its
    /// `(start, end)` timestamps. The item starts when the stream is free
    /// and the host has issued it.
    pub fn schedule(&mut self, stream: StreamId, duration_us: f64) -> Result<(f64, f64), GpuError> {
        self.check_stream(stream)?;
        assert!(duration_us >= 0.0, "durations are non-negative");
        let start = self.streams[stream.0].max(self.host_now_us);
        let end = start + duration_us;
        self.streams[stream.0] = end;
        Ok((start, end))
    }

    /// Record an event capturing `stream`'s current completion time
    /// (`hipEventRecord`).
    pub fn record_event(&mut self, stream: StreamId) -> Result<EventId, GpuError> {
        self.check_stream(stream)?;
        self.events.push(self.streams[stream.0]);
        Ok(EventId(self.events.len() - 1))
    }

    /// Make `stream` wait for `event` (`hipStreamWaitEvent`).
    pub fn stream_wait_event(&mut self, stream: StreamId, event: EventId) -> Result<(), GpuError> {
        self.check_stream(stream)?;
        let t = *self
            .events
            .get(event.0)
            .ok_or_else(|| GpuError::InvalidHandle(format!("event {} does not exist", event.0)))?;
        if t > self.streams[stream.0] {
            self.streams[stream.0] = t;
        }
        Ok(())
    }

    /// Event timestamp in µs (`hipEventElapsedTime` building block).
    pub fn event_time_us(&self, event: EventId) -> Result<f64, GpuError> {
        self.events
            .get(event.0)
            .copied()
            .ok_or_else(|| GpuError::InvalidHandle(format!("event {} does not exist", event.0)))
    }

    /// Block the host until `stream` drains (`hipStreamSynchronize`).
    pub fn sync_stream(&mut self, stream: StreamId) -> Result<f64, GpuError> {
        self.check_stream(stream)?;
        if self.streams[stream.0] > self.host_now_us {
            self.host_now_us = self.streams[stream.0];
        }
        Ok(self.host_now_us)
    }

    /// Block the host until the whole device drains
    /// (`hipDeviceSynchronize`); returns the simulated time, µs.
    pub fn synchronize(&mut self) -> f64 {
        let max = self.streams.iter().copied().fold(self.host_now_us, f64::max);
        self.host_now_us = max;
        max
    }

    /// Current host-side simulated time, µs (advances only at
    /// synchronization points).
    pub fn host_now_us(&self) -> f64 {
        self.host_now_us
    }

    /// Advance the host cursor by `us` of host-side work (e.g. gate
    /// fusion running on the CPU between launches).
    pub fn advance_host(&mut self, us: f64) {
        assert!(us >= 0.0);
        self.host_now_us += us;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_stream_serializes() {
        let mut tl = Timeline::new();
        let (s1, e1) = tl.schedule(StreamId::DEFAULT, 10.0).unwrap();
        let (s2, e2) = tl.schedule(StreamId::DEFAULT, 5.0).unwrap();
        assert_eq!((s1, e1), (0.0, 10.0));
        assert_eq!((s2, e2), (10.0, 15.0));
        assert_eq!(tl.synchronize(), 15.0);
    }

    #[test]
    fn different_streams_overlap() {
        let mut tl = Timeline::new();
        let s = tl.create_stream();
        let (a0, a1) = tl.schedule(StreamId::DEFAULT, 10.0).unwrap();
        let (b0, b1) = tl.schedule(s, 8.0).unwrap();
        assert_eq!((a0, a1), (0.0, 10.0));
        assert_eq!((b0, b1), (0.0, 8.0)); // overlapped
        assert_eq!(tl.synchronize(), 10.0);
    }

    #[test]
    fn events_order_streams() {
        let mut tl = Timeline::new();
        let s = tl.create_stream();
        tl.schedule(StreamId::DEFAULT, 10.0).unwrap();
        let ev = tl.record_event(StreamId::DEFAULT).unwrap();
        assert_eq!(tl.event_time_us(ev).unwrap(), 10.0);
        tl.stream_wait_event(s, ev).unwrap();
        let (b0, _) = tl.schedule(s, 1.0).unwrap();
        assert_eq!(b0, 10.0); // waited for the event
    }

    #[test]
    fn host_cursor_gates_new_work() {
        let mut tl = Timeline::new();
        tl.schedule(StreamId::DEFAULT, 10.0).unwrap();
        tl.synchronize();
        tl.advance_host(5.0); // host does 5 µs of work
        let (s0, _) = tl.schedule(StreamId::DEFAULT, 1.0).unwrap();
        assert_eq!(s0, 15.0);
    }

    #[test]
    fn sync_stream_only_waits_for_that_stream() {
        let mut tl = Timeline::new();
        let s = tl.create_stream();
        tl.schedule(StreamId::DEFAULT, 100.0).unwrap();
        tl.schedule(s, 10.0).unwrap();
        assert_eq!(tl.sync_stream(s).unwrap(), 10.0);
        assert_eq!(tl.synchronize(), 100.0);
    }

    #[test]
    fn invalid_handles_rejected() {
        let mut tl = Timeline::new();
        assert!(tl.schedule(StreamId(9), 1.0).is_err());
        assert!(tl.record_event(StreamId(9)).is_err());
        let ev = tl.record_event(StreamId::DEFAULT).unwrap();
        assert!(tl.stream_wait_event(StreamId(9), ev).is_err());
        assert!(tl.event_time_us(ev).is_ok());
    }
}
