//! Device specifications, including the paper's Table 1 hardware and the
//! calibration constants of the performance model.
//!
//! Peak numbers (memory bandwidth, SP/DP FLOP rates, memory capacity,
//! wavefront width) are taken verbatim from Table 1 of the paper.
//! Efficiency constants — which fraction of those peaks the qsim-style
//! gather/scatter kernels achieve — are calibration parameters; their
//! values and rationale are documented on each preset and the resulting
//! paper-vs-model deltas are recorded in EXPERIMENTS.md.

const GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Broad device class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DeviceKind {
    /// A discrete GPU (or one GCD of a multi-die GPU).
    Gpu,
    /// A multicore CPU socket driven OpenMP-style.
    Cpu,
}

serde::impl_serde_unit_enum!(DeviceKind { Gpu, Cpu });

/// A modeled execution device.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceSpec {
    /// Marketing name, e.g. `"NVIDIA A100"`.
    pub name: String,
    /// GPU or CPU.
    pub kind: DeviceKind,
    /// SIMT width: CUDA warp (32) or AMD wavefront (64). For CPUs, the
    /// SIMD vector width in 32-bit lanes (8 for AVX2).
    pub wavefront_width: u32,
    /// Streaming multiprocessors / compute units / cores.
    pub compute_units: u32,
    /// Maximum threads per block the runtime accepts.
    pub max_threads_per_block: u32,
    /// Shared memory (LDS) available to one block, bytes.
    pub shared_mem_per_block: u32,
    /// Device memory capacity, bytes.
    pub memory_bytes: u64,
    /// Peak memory bandwidth, GiB/s (Table 1).
    pub mem_bw_gib_s: f64,
    /// Peak single-precision rate, TFLOP/s (Table 1).
    pub sp_tflops: f64,
    /// Peak double-precision rate, TFLOP/s.
    pub dp_tflops: f64,
    /// Host↔device interconnect bandwidth, GiB/s (PCIe 4.0 x16 ≈ 24 GiB/s
    /// effective; Infinity Fabric for the MI250X host link).
    pub h2d_bw_gib_s: f64,
    /// Fixed kernel-launch latency, microseconds.
    pub launch_latency_us: f64,

    // ---- calibration constants (see module docs) ----
    /// Fraction of peak bandwidth these gather/scatter kernels achieve
    /// with fully-populated wavefronts.
    pub mem_efficiency: f64,
    /// Fraction of peak FLOPs achieved by the in-register matrix work.
    pub flop_efficiency: f64,
    /// How strongly under-filled wavefronts reduce *achieved memory
    /// bandwidth* (0 = none, 1 = proportional). Latency-bound GPUs need
    /// every lane issuing loads to saturate HBM, so this is high for GPUs.
    pub wave_mem_sensitivity: f64,
    /// Blocks needed per compute unit for full occupancy; fewer blocks
    /// scale throughput down linearly.
    pub occupancy_blocks_per_cu: u32,
}

serde::impl_serde_struct!(DeviceSpec {
    name,
    kind,
    wavefront_width,
    compute_units,
    max_threads_per_block,
    shared_mem_per_block,
    memory_bytes,
    mem_bw_gib_s,
    sp_tflops,
    dp_tflops,
    h2d_bw_gib_s,
    launch_latency_us,
    mem_efficiency,
    flop_efficiency,
    wave_mem_sensitivity,
    occupancy_blocks_per_cu,
});

impl DeviceSpec {
    /// Nvidia A100 40 GB (Table 1): 1448 GiB/s memory bandwidth, warp 32.
    ///
    /// **Deviation from Table 1:** the paper lists 10.5 SP TFLOP/s, but
    /// the A100's FP32 peak is 19.5 TFLOP/s (its FP64 peak is 9.7, which
    /// Table 1 appears to have halved-from). With 10.5 the device model
    /// would go compute-bound at fused size 4 and *deteriorate* at larger
    /// fusion — contradicting the paper's own observation that the Nvidia
    /// backend does not. We therefore use the datasheet 19.5.
    ///
    /// Efficiencies: qsim's CUDA backend is "highly optimized" (paper
    /// §2.3) and Nvidia's memory system tolerates the strided gathers
    /// well; we credit 80 % of peak bandwidth and 62 % of peak flops
    /// (the fused-matrix work streams operands through shared memory
    /// rather than registers, so it sits well below FMA peak — this is
    /// what turns fused sizes above 4 compute-bound and puts the optimum
    /// at 4, as every backend in the paper observes).
    pub fn a100() -> Self {
        DeviceSpec {
            name: "NVIDIA A100".into(),
            kind: DeviceKind::Gpu,
            wavefront_width: 32,
            compute_units: 108,
            max_threads_per_block: 1024,
            shared_mem_per_block: 48 * 1024,
            memory_bytes: 40 * GIB as u64,
            mem_bw_gib_s: 1448.0,
            sp_tflops: 19.5,
            dp_tflops: 9.7,
            h2d_bw_gib_s: 24.0,
            launch_latency_us: 4.0,
            mem_efficiency: 0.80,
            flop_efficiency: 0.62,
            wave_mem_sensitivity: 0.5,
            occupancy_blocks_per_cu: 4,
        }
    }

    /// One GCD of an AMD MI250X (Table 1): 1638.4 GiB/s, 23.95 SP
    /// TFLOP/s, wavefront 64, 128 GB HBM2e per GCD (Table 1's figure).
    ///
    /// Efficiencies: on coalesced, fully-populated wavefronts the GCD's
    /// HBM2e streams well (88 % of peak here); the hipified backend's
    /// real handicap is concentrated in `ApplyGateL_Kernel`, which keeps
    /// its CUDA-era 32-thread blocks — half of every 64-lane wavefront
    /// idle (paper §4) — and pays heavy extra rearrangement traffic per
    /// low qubit (see `Flavor::low_qubit_byte_overhead`); a small
    /// `wave_mem_sensitivity` adds the residual issue-rate loss of
    /// half-filled wavefronts.
    pub fn mi250x_gcd() -> Self {
        DeviceSpec {
            name: "AMD MI250X (1 GCD)".into(),
            kind: DeviceKind::Gpu,
            wavefront_width: 64,
            compute_units: 110,
            max_threads_per_block: 1024,
            shared_mem_per_block: 64 * 1024,
            memory_bytes: 128 * GIB as u64,
            mem_bw_gib_s: 1638.4,
            sp_tflops: 23.95,
            dp_tflops: 23.95,
            h2d_bw_gib_s: 32.0,
            launch_latency_us: 7.0,
            mem_efficiency: 0.88,
            flop_efficiency: 0.75,
            wave_mem_sensitivity: 0.10,
            occupancy_blocks_per_cu: 4,
        }
    }

    /// AMD EPYC 7A53 "Trento" socket (Table 1): 64 cores at 2.75 GHz,
    /// 512 GB DDR4. Peak bandwidth is 8-channel DDR4-3200 = 190.7 GiB/s;
    /// peak SP flops 64 cores × 2.75 GHz × 32 flops/cycle (2×256-bit FMA)
    /// = 5.63 TFLOP/s. Run OpenMP-style with 128 threads (paper §4).
    ///
    /// Efficiencies: qsim's OpenMP gate loop reaches ~68 % of DDR4 peak
    /// (STREAM-class); its flop efficiency is low (13 % — the AVX path is
    /// gather/scatter-dominated on fused matrices), which is what turns
    /// fused sizes above 4 compute-bound and makes 4 the CPU optimum in
    /// Figure 7. Each gate pass also pays an OpenMP fork/barrier
    /// (`launch_latency_us`).
    pub fn epyc_trento() -> Self {
        DeviceSpec {
            name: "AMD EPYC 7A53 Trento".into(),
            kind: DeviceKind::Cpu,
            wavefront_width: 8,
            compute_units: 64,
            max_threads_per_block: 128,
            shared_mem_per_block: 32 * 1024 * 1024, // L3 slice; unused by model
            memory_bytes: 512 * GIB as u64,
            mem_bw_gib_s: 190.7,
            sp_tflops: 5.63,
            dp_tflops: 2.82,
            h2d_bw_gib_s: f64::INFINITY, // host memory *is* device memory
            launch_latency_us: 15.0,     // OpenMP parallel-for fork+barrier
            mem_efficiency: 0.68,
            flop_efficiency: 0.13,
            wave_mem_sensitivity: 0.2,
            occupancy_blocks_per_cu: 1,
        }
    }

    /// Peak memory bandwidth in bytes/second.
    pub fn mem_bw_bytes_s(&self) -> f64 {
        self.mem_bw_gib_s * GIB
    }

    /// Peak flops per second at the given precision.
    pub fn flops_per_s(&self, double_precision: bool) -> f64 {
        if double_precision {
            self.dp_tflops * 1e12
        } else {
            self.sp_tflops * 1e12
        }
    }

    /// Host↔device bandwidth in bytes/second.
    pub fn h2d_bw_bytes_s(&self) -> f64 {
        self.h2d_bw_gib_s * GIB
    }

    /// Machine balance: flops per byte at which the device transitions
    /// from memory- to compute-bound (at peak rates).
    pub fn balance_flops_per_byte(&self, double_precision: bool) -> f64 {
        self.flops_per_s(double_precision) / self.mem_bw_bytes_s()
    }
}

/// The software environment rows of Table 1, for the `table1` harness.
/// Serialize-only: the `&'static str` fields cannot be deserialized into,
/// and nothing reads this type back.
#[derive(Debug, Clone, PartialEq)]
pub struct SoftwareSetup {
    pub qsim_version: &'static str,
    pub compiler: &'static str,
    pub rocm: &'static str,
    pub cuda_toolkit: &'static str,
    pub cuquantum: &'static str,
}

impl serde::Serialize for SoftwareSetup {
    fn to_value(&self) -> serde::Value {
        serde::Value::Object(vec![
            ("qsim_version".to_string(), serde::Serialize::to_value(self.qsim_version)),
            ("compiler".to_string(), serde::Serialize::to_value(self.compiler)),
            ("rocm".to_string(), serde::Serialize::to_value(self.rocm)),
            ("cuda_toolkit".to_string(), serde::Serialize::to_value(self.cuda_toolkit)),
            ("cuquantum".to_string(), serde::Serialize::to_value(self.cuquantum)),
        ])
    }
}

impl Default for SoftwareSetup {
    fn default() -> Self {
        SoftwareSetup {
            qsim_version: "0.16.3 (qsim-rs reproduction)",
            compiler: "GCC 8.5.0 (paper) / rustc (this repo)",
            rocm: "5.3.3 (modeled)",
            cuda_toolkit: "CUDA 11.5 (modeled)",
            cuquantum: "23.03.0 (modeled)",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_numbers_are_encoded() {
        let a = DeviceSpec::a100();
        assert_eq!(a.mem_bw_gib_s, 1448.0);
        // 19.5 is the A100 datasheet FP32 peak; Table 1's 10.5 is
        // inconsistent with the part (see the preset's doc comment).
        assert_eq!(a.sp_tflops, 19.5);
        assert_eq!(a.wavefront_width, 32);
        assert_eq!(a.memory_bytes, 40 * 1024 * 1024 * 1024);

        let m = DeviceSpec::mi250x_gcd();
        assert_eq!(m.mem_bw_gib_s, 1638.4);
        assert_eq!(m.sp_tflops, 23.95);
        assert_eq!(m.wavefront_width, 64);
        assert_eq!(m.memory_bytes, 128 * 1024 * 1024 * 1024);

        let c = DeviceSpec::epyc_trento();
        assert_eq!(c.compute_units, 64);
        assert_eq!(c.kind, DeviceKind::Cpu);
    }

    #[test]
    fn derived_rates() {
        let a = DeviceSpec::a100();
        assert!((a.mem_bw_bytes_s() - 1448.0 * 1073741824.0).abs() < 1.0);
        assert_eq!(a.flops_per_s(false), 19.5e12);
        assert_eq!(a.flops_per_s(true), 9.7e12);
        // A100 balance ≈ 12.5 flops/byte single precision.
        let b = a.balance_flops_per_byte(false);
        assert!((b - 12.5).abs() < 0.2, "balance {b}");
    }

    #[test]
    fn efficiency_constants_are_fractions() {
        for s in [DeviceSpec::a100(), DeviceSpec::mi250x_gcd(), DeviceSpec::epyc_trento()] {
            assert!(s.mem_efficiency > 0.0 && s.mem_efficiency <= 1.0, "{}", s.name);
            assert!(s.flop_efficiency > 0.0 && s.flop_efficiency <= 1.0, "{}", s.name);
            assert!((0.0..=1.0).contains(&s.wave_mem_sensitivity), "{}", s.name);
        }
    }

    #[test]
    fn serde_roundtrip() {
        let s = DeviceSpec::mi250x_gcd();
        let json = serde_json::to_string(&s).unwrap();
        let back: DeviceSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(s, back);
    }
}
