//! The simulated GPU runtime handle — the Rust analogue of the HIP/CUDA
//! runtime API surface qsim's backends program against (`hipMalloc`,
//! `hipMemcpyAsync`, kernel launch, streams, `hipDeviceSynchronize`).
//!
//! Kernels execute *functionally* on the host: `launch` takes a closure
//! that performs the real computation (typically fanning out over rayon),
//! while the virtual timeline is charged the duration the [`crate::perf`]
//! model predicts for the declared work and launch geometry on the
//! modeled device.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::error::GpuError;
use crate::memory::{DeviceBuffer, MemoryPool};
use crate::perf::{kernel_time, memcpy_time, LaunchProfile};
use crate::specs::DeviceSpec;
use crate::timeline::Timeline;
pub use crate::timeline::{EventId, StreamId};
use crate::trace::{SpanKind, TraceSink, TraceSpan};

/// Memory traffic and arithmetic of one kernel launch.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct KernelWork {
    /// Bytes read from + written to device memory.
    pub bytes: f64,
    /// Floating-point operations.
    pub flops: f64,
    /// Full passes over the state vector this launch begins (informational
    /// accounting for cache-blocked sweeps; does not affect modeled time).
    /// 1.0 for an ordinary gate kernel; 0.0 for a launch folded into an
    /// already-open sweep pass.
    pub passes: f64,
}

/// Declaration of a kernel launch: symbol, geometry, and work.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelDesc {
    /// Kernel symbol as it should appear in traces
    /// (e.g. `"ApplyGateL_Kernel"`).
    pub name: String,
    /// Grid size in blocks.
    pub blocks: u64,
    /// Threads per block ("threads per workgroup" in HIP terms).
    pub threads_per_block: u32,
    /// Static shared memory (LDS) per block, bytes.
    pub shared_mem_bytes: u32,
    /// Declared work for the performance model.
    pub work: KernelWork,
    /// Whether the kernel computes in double precision.
    pub double_precision: bool,
}

/// A simulated GPU (or CPU modeled through the same interface).
///
/// Cheap to share: clone the `Arc` you wrap it in, or pass `&Gpu`; all
/// interior state is synchronized.
pub struct Gpu {
    spec: DeviceSpec,
    timeline: Mutex<Timeline>,
    pool: Arc<Mutex<MemoryPool>>,
    sink: Option<Arc<dyn TraceSink>>,
    state_passes: Mutex<f64>,
}

impl std::fmt::Debug for Gpu {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Gpu").field("spec", &self.spec.name).finish()
    }
}

impl Gpu {
    /// Bring up a device.
    pub fn new(spec: DeviceSpec) -> Self {
        let capacity = spec.memory_bytes;
        Gpu {
            spec,
            timeline: Mutex::new(Timeline::new()),
            pool: Arc::new(Mutex::new(MemoryPool::new(capacity))),
            sink: None,
            state_passes: Mutex::new(0.0),
        }
    }

    /// Bring up a device with a trace sink attached (rocprof-style
    /// profiling enabled).
    pub fn with_trace(spec: DeviceSpec, sink: Arc<dyn TraceSink>) -> Self {
        let mut gpu = Self::new(spec);
        gpu.sink = Some(sink);
        gpu
    }

    /// The device's specification.
    pub fn spec(&self) -> &DeviceSpec {
        &self.spec
    }

    /// Create a new stream (`hipStreamCreate`).
    pub fn create_stream(&self) -> StreamId {
        self.timeline.lock().create_stream()
    }

    /// Allocate a zero-initialised buffer of `len` elements
    /// (`hipMalloc`). Fails with [`GpuError::OutOfMemory`] when the
    /// modeled capacity is exhausted.
    pub fn malloc<T: Default + Clone>(&self, len: usize) -> Result<DeviceBuffer<T>, GpuError> {
        DeviceBuffer::new(len, self.pool.clone())
    }

    fn emit(&self, name: &str, kind: SpanKind, stream: StreamId, start: f64, end: f64) {
        if let Some(sink) = &self.sink {
            sink.record(TraceSpan {
                name: name.to_string(),
                kind,
                stream: stream.index(),
                start_us: start,
                dur_us: end - start,
                device: self.spec.name.clone(),
            });
        }
    }

    /// Charge an externally-modeled activity (e.g. a device-to-device
    /// interconnect exchange whose cost comes from a link model) to the
    /// timeline, with an explicit duration.
    pub fn charge_custom(
        &self,
        name: &str,
        kind: SpanKind,
        stream: StreamId,
        dur_us: f64,
    ) -> Result<(f64, f64), GpuError> {
        let (start, end) = self.timeline.lock().schedule(stream, dur_us)?;
        self.emit(name, kind, stream, start, end);
        Ok((start, end))
    }

    /// Charge a host↔device copy of `bytes` to the timeline without
    /// moving any data — the accounting path shared by the real copies
    /// and by dry-run (`estimate`) executions.
    pub fn charge_memcpy(
        &self,
        kind: SpanKind,
        bytes: u64,
        stream: StreamId,
    ) -> Result<(f64, f64), GpuError> {
        let dur_us = memcpy_time(&self.spec, bytes) * 1e6;
        let (start, end) = self.timeline.lock().schedule(stream, dur_us)?;
        self.emit(kind.label(), kind, stream, start, end);
        Ok((start, end))
    }

    /// Charge a kernel launch to the timeline without running a body —
    /// the dry-run counterpart of [`Gpu::launch`]. Geometry validation is
    /// identical.
    pub fn charge_launch(
        &self,
        desc: &KernelDesc,
        stream: StreamId,
    ) -> Result<(f64, f64), GpuError> {
        let (s, e, _) = self.launch_inner(desc, stream, None::<fn()>)?;
        Ok((s, e))
    }

    /// Asynchronous host→device copy (`hipMemcpyAsync`).
    pub fn memcpy_h2d_async<T: Copy>(
        &self,
        dst: &mut DeviceBuffer<T>,
        src: &[T],
        stream: StreamId,
    ) -> Result<(), GpuError> {
        if dst.len() != src.len() {
            return Err(GpuError::InvalidValue(format!(
                "memcpy H2D size mismatch: dst {} elements, src {}",
                dst.len(),
                src.len()
            )));
        }
        let bytes = dst.bytes();
        dst.as_mut_slice().copy_from_slice(src);
        self.charge_memcpy(SpanKind::MemcpyH2D, bytes, stream)?;
        Ok(())
    }

    /// Asynchronous device→host copy (`hipMemcpyAsync`).
    pub fn memcpy_d2h_async<T: Copy>(
        &self,
        dst: &mut [T],
        src: &DeviceBuffer<T>,
        stream: StreamId,
    ) -> Result<(), GpuError> {
        if dst.len() != src.len() {
            return Err(GpuError::InvalidValue(format!(
                "memcpy D2H size mismatch: dst {} elements, src {}",
                dst.len(),
                src.len()
            )));
        }
        let bytes = src.bytes();
        dst.copy_from_slice(src.as_slice());
        self.charge_memcpy(SpanKind::MemcpyD2H, bytes, stream)?;
        Ok(())
    }

    /// Launch a kernel: validates geometry against the device, charges the
    /// modeled duration to `stream`, runs `body` (the functional
    /// computation) on the host, and emits a trace span.
    ///
    /// Returns the simulated `(start, end)` timestamps in µs.
    pub fn launch<R>(
        &self,
        desc: &KernelDesc,
        stream: StreamId,
        body: impl FnOnce() -> R,
    ) -> Result<(f64, f64, R), GpuError> {
        let (s, e, r) = self.launch_inner(desc, stream, Some(body))?;
        Ok((s, e, r.expect("body was provided")))
    }

    fn launch_inner<R>(
        &self,
        desc: &KernelDesc,
        stream: StreamId,
        body: Option<impl FnOnce() -> R>,
    ) -> Result<(f64, f64, Option<R>), GpuError> {
        if desc.blocks == 0 {
            return Err(GpuError::InvalidLaunch("grid must have at least one block".into()));
        }
        if desc.threads_per_block == 0 {
            return Err(GpuError::InvalidLaunch("block must have at least one thread".into()));
        }
        if desc.threads_per_block > self.spec.max_threads_per_block {
            return Err(GpuError::InvalidLaunch(format!(
                "block of {} threads exceeds device maximum {}",
                desc.threads_per_block, self.spec.max_threads_per_block
            )));
        }
        if desc.shared_mem_bytes > self.spec.shared_mem_per_block {
            return Err(GpuError::InvalidLaunch(format!(
                "{} B of shared memory exceeds the {} B per-block limit",
                desc.shared_mem_bytes, self.spec.shared_mem_per_block
            )));
        }
        let profile = LaunchProfile {
            bytes: desc.work.bytes,
            flops: desc.work.flops,
            blocks: desc.blocks,
            threads_per_block: desc.threads_per_block,
            double_precision: desc.double_precision,
        };
        let dur_us = kernel_time(&self.spec, &profile) * 1e6;
        let (start, end) = self.timeline.lock().schedule(stream, dur_us)?;
        *self.state_passes.lock() += desc.work.passes;
        let result = body.map(|b| b());
        self.emit(&desc.name, SpanKind::Kernel, stream, start, end);
        Ok((start, end, result))
    }

    /// Accumulated full passes over the state vector, summed from the
    /// `passes` field of every launched kernel's [`KernelWork`]. With
    /// per-gate execution this equals the number of gate kernels; a
    /// cache-blocked sweep reports fewer.
    pub fn state_passes(&self) -> f64 {
        *self.state_passes.lock()
    }

    /// Record an event on `stream` (`hipEventRecord`).
    pub fn record_event(&self, stream: StreamId) -> Result<EventId, GpuError> {
        self.timeline.lock().record_event(stream)
    }

    /// Make `stream` wait on `event` (`hipStreamWaitEvent`).
    pub fn stream_wait_event(&self, stream: StreamId, event: EventId) -> Result<(), GpuError> {
        self.timeline.lock().stream_wait_event(stream, event)
    }

    /// Wait for one stream (`hipStreamSynchronize`); returns simulated µs.
    pub fn sync_stream(&self, stream: StreamId) -> Result<f64, GpuError> {
        self.timeline.lock().sync_stream(stream)
    }

    /// Drain the device (`hipDeviceSynchronize`); returns simulated µs.
    pub fn synchronize(&self) -> f64 {
        self.timeline.lock().synchronize()
    }

    /// Charge host-side work (e.g. the gate-fusion transpiler) to the
    /// simulated clock.
    pub fn advance_host_us(&self, us: f64) {
        self.timeline.lock().advance_host(us);
    }

    /// Current simulated host time, µs.
    pub fn now_us(&self) -> f64 {
        self.timeline.lock().host_now_us()
    }

    /// `(allocated, peak, free)` device memory in bytes.
    pub fn memory_usage(&self) -> (u64, u64, u64) {
        let p = self.pool.lock();
        (p.allocated(), p.peak(), p.free())
    }

    /// Restart peak-memory tracking from the current allocation level, so
    /// a long-lived device serving many runs can report a per-run peak.
    pub fn reset_peak_memory(&self) {
        self.pool.lock().reset_peak();
    }

    /// Adopt an existing host allocation as a device buffer — the
    /// recycled-state-buffer path of `hipMalloc` reuse: the pool is
    /// charged for the footprint but nothing is allocated or zeroed, and
    /// the contents are the previous owner's garbage. On OOM the vector
    /// rides back with the error for the caller to recycle.
    pub fn adopt_vec<T>(&self, data: Vec<T>) -> Result<DeviceBuffer<T>, (GpuError, Vec<T>)> {
        DeviceBuffer::adopt(data, self.pool.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_gpu() -> Gpu {
        let mut spec = DeviceSpec::a100();
        spec.memory_bytes = 1 << 20; // 1 MiB for OOM tests
        Gpu::new(spec)
    }

    fn desc(name: &str, blocks: u64, tpb: u32) -> KernelDesc {
        KernelDesc {
            name: name.into(),
            blocks,
            threads_per_block: tpb,
            shared_mem_bytes: 0,
            work: KernelWork { bytes: 1e6, flops: 1e6, passes: 1.0 },
            double_precision: false,
        }
    }

    #[test]
    fn malloc_and_oom() {
        let gpu = small_gpu();
        let buf = gpu.malloc::<f32>(1024).unwrap();
        assert_eq!(buf.len(), 1024);
        assert_eq!(gpu.memory_usage().0, 4096);
        assert!(matches!(gpu.malloc::<f32>(1 << 20), Err(GpuError::OutOfMemory { .. })));
    }

    #[test]
    fn kernel_launch_runs_body_and_advances_clock() {
        let gpu = small_gpu();
        let mut ran = false;
        let (start, end, ()) = gpu
            .launch(&desc("TestKernel", 1024, 64), StreamId::DEFAULT, || {
                ran = true;
            })
            .unwrap();
        assert!(ran);
        assert!(end > start);
        assert_eq!(gpu.synchronize(), end);
    }

    #[test]
    fn launch_returns_body_result() {
        let gpu = small_gpu();
        let (_, _, x) = gpu.launch(&desc("K", 1, 32), StreamId::DEFAULT, || 42).unwrap();
        assert_eq!(x, 42);
    }

    #[test]
    fn invalid_launch_geometry() {
        let gpu = small_gpu();
        assert!(gpu.launch(&desc("K", 0, 32), StreamId::DEFAULT, || ()).is_err());
        assert!(gpu.launch(&desc("K", 1, 0), StreamId::DEFAULT, || ()).is_err());
        assert!(gpu.launch(&desc("K", 1, 4096), StreamId::DEFAULT, || ()).is_err());
        let mut d = desc("K", 1, 32);
        d.shared_mem_bytes = 10 * 1024 * 1024;
        assert!(matches!(
            gpu.launch(&d, StreamId::DEFAULT, || ()),
            Err(GpuError::InvalidLaunch(_))
        ));
    }

    #[test]
    fn memcpy_roundtrip() {
        let gpu = small_gpu();
        let src = vec![1.0f32, 2.0, 3.0, 4.0];
        let mut buf = gpu.malloc::<f32>(4).unwrap();
        gpu.memcpy_h2d_async(&mut buf, &src, StreamId::DEFAULT).unwrap();
        let mut back = vec![0.0f32; 4];
        gpu.memcpy_d2h_async(&mut back, &buf, StreamId::DEFAULT).unwrap();
        assert_eq!(src, back);
        assert!(gpu.synchronize() > 0.0);
    }

    #[test]
    fn memcpy_size_mismatch() {
        let gpu = small_gpu();
        let mut buf = gpu.malloc::<f32>(4).unwrap();
        assert!(gpu.memcpy_h2d_async(&mut buf, &[1.0f32; 3], StreamId::DEFAULT).is_err());
        let mut small = [0.0f32; 3];
        assert!(gpu.memcpy_d2h_async(&mut small, &buf, StreamId::DEFAULT).is_err());
    }

    #[test]
    fn streams_overlap_kernels() {
        let gpu = small_gpu();
        let s2 = gpu.create_stream();
        let d = desc("K", 1 << 16, 64);
        let (a0, a1, ()) = gpu.launch(&d, StreamId::DEFAULT, || ()).unwrap();
        let (b0, b1, ()) = gpu.launch(&d, s2, || ()).unwrap();
        assert_eq!(a0, b0, "kernels on different streams overlap");
        assert_eq!(gpu.synchronize(), a1.max(b1));
    }

    #[test]
    fn trace_sink_receives_spans() {
        use parking_lot::Mutex;
        #[derive(Default)]
        struct Counter(Mutex<Vec<String>>);
        impl TraceSink for Counter {
            fn record(&self, span: TraceSpan) {
                self.0.lock().push(span.name);
            }
        }
        let sink = Arc::new(Counter::default());
        let mut spec = DeviceSpec::mi250x_gcd();
        spec.memory_bytes = 1 << 20;
        let gpu = Gpu::with_trace(spec, sink.clone());
        let mut buf = gpu.malloc::<f32>(4).unwrap();
        gpu.memcpy_h2d_async(&mut buf, &[0.0; 4], StreamId::DEFAULT).unwrap();
        gpu.launch(&desc("ApplyGateH_Kernel", 64, 64), StreamId::DEFAULT, || ()).unwrap();
        let names = sink.0.lock().clone();
        assert_eq!(names.len(), 2);
        assert!(names[0].contains("H2D"));
        assert_eq!(names[1], "ApplyGateH_Kernel");
    }

    #[test]
    fn state_passes_accumulate_from_launches() {
        let gpu = small_gpu();
        assert_eq!(gpu.state_passes(), 0.0);
        gpu.launch(&desc("A", 64, 64), StreamId::DEFAULT, || ()).unwrap();
        gpu.charge_launch(&desc("B", 64, 64), StreamId::DEFAULT).unwrap();
        let mut folded = desc("C", 64, 64);
        folded.work.passes = 0.0; // joins an open sweep pass
        gpu.launch(&folded, StreamId::DEFAULT, || ()).unwrap();
        assert_eq!(gpu.state_passes(), 2.0);
    }

    #[test]
    fn events_across_streams() {
        let gpu = small_gpu();
        let s2 = gpu.create_stream();
        gpu.launch(&desc("A", 1 << 16, 64), StreamId::DEFAULT, || ()).unwrap();
        let ev = gpu.record_event(StreamId::DEFAULT).unwrap();
        gpu.stream_wait_event(s2, ev).unwrap();
        let (b0, _, ()) = gpu.launch(&desc("B", 1, 64), s2, || ()).unwrap();
        let t_ev = gpu.sync_stream(StreamId::DEFAULT).unwrap();
        assert!(b0 >= t_ev);
    }
}
