//! # gpu-model
//!
//! A **simulated GPU substrate**: the paper's subject hardware (Nvidia A100,
//! AMD MI250X) is not available in this environment, so this crate provides
//! the closest synthetic equivalent that exercises the same code paths — a
//! HIP/CUDA-style runtime whose kernels run *functionally* on host threads
//! while their *execution times* come from an analytic device performance
//! model driven by the paper's Table 1 hardware numbers.
//!
//! Components:
//!
//! * [`specs`] — [`specs::DeviceSpec`] presets for the A100, the MI250X
//!   GCD, and the EPYC 7A53 "Trento" CPU (Table 1), including the
//!   calibration constants of the performance model;
//! * [`perf`] — the analytic kernel-time model: roofline
//!   (bytes vs HBM bandwidth, flops vs peak) extended with wavefront
//!   utilization (the 32-thread-block-on-64-lane-wavefront penalty at the
//!   heart of the paper's HIP-vs-CUDA gap), occupancy, and launch latency;
//! * [`timeline`] — streams and events over a virtual clock, so
//!   `memcpyAsync`/kernel overlap behaves like the paper's Figures 1 & 6;
//! * [`memory`] — device memory arena with capacity accounting and OOM
//!   errors;
//! * [`runtime`] — the `Gpu` handle tying it together: `malloc`,
//!   `memcpy_*_async`, `launch`, `synchronize`, mirroring the HIP runtime
//!   API (`hipMalloc`, `hipMemcpyAsync`, kernel launch, …);
//! * [`trace`] — span hooks that a rocprof-equivalent tracer (the
//!   `qsim-trace` crate) subscribes to.

pub mod error;
pub mod memory;
pub mod perf;
pub mod runtime;
pub mod specs;
pub mod timeline;
pub mod trace;

pub use error::GpuError;
pub use runtime::{Gpu, KernelDesc, KernelWork, StreamId};
pub use specs::{DeviceKind, DeviceSpec};
pub use trace::{SpanKind, TraceSink, TraceSpan};
