//! # qsim-hybrid
//!
//! A Feynman-style **hybrid simulator**, the Rust analogue of qsim's
//! `qsimh`: the qubit set is cut into two parts, each simulated with its
//! own (much smaller) state vector; two-qubit gates crossing the cut are
//! decomposed into *Schmidt terms*
//!
//! ```text
//! M = Σ_{a_out, a_in}  |a_out⟩⟨a_in|  ⊗  B_{a_out, a_in}
//! ```
//!
//! and the simulator sums over every combination of terms (*paths*),
//! multiplying the two parts' amplitudes at the end. With `c` crossing
//! gates of branch factor `r`, the cost is `O(r^c · 2^{max(k, n-k)})`
//! time with only `O(2^k + 2^{n-k})` memory — the memory/time trade that
//! lets qsimh reach qubit counts a single state vector cannot hold.
//!
//! Paths are enumerated recursively so shared *prefixes* of the path tree
//! are simulated once (qsimh's prefix optimization).

use qsim_circuit::Circuit;
use qsim_core::kernels::apply_gate_slice_seq;
use qsim_core::matrix::GateMatrix;
use qsim_core::types::Cplx;
use qsim_core::StateVector;

/// Why a circuit cannot be hybrid-simulated with the given cut.
#[derive(Debug, Clone, PartialEq)]
pub enum HybridError {
    /// The cut must leave at least one qubit on each side.
    BadCut { num_qubits: usize, part_a: usize },
    /// Mid-circuit measurement has no path-sum semantics here.
    MeasurementUnsupported,
    /// A gate acts on 3+ qubits spanning the cut (fuse within parts only).
    WideCrossingGate { qubits: Vec<usize> },
}

impl std::fmt::Display for HybridError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HybridError::BadCut { num_qubits, part_a } => {
                write!(f, "cut at {part_a} invalid for {num_qubits} qubits (need 1..{num_qubits})")
            }
            HybridError::MeasurementUnsupported => {
                write!(f, "hybrid simulation does not support mid-circuit measurement")
            }
            HybridError::WideCrossingGate { qubits } => {
                write!(f, "gate on {qubits:?} spans the cut with more than 2 qubits")
            }
        }
    }
}

impl std::error::Error for HybridError {}

/// One Schmidt term of a crossing gate.
struct SchmidtTerm {
    /// `|a_out⟩⟨a_in|` on the part-A qubit.
    a_op: GateMatrix<f64>,
    /// The matching 2×2 block on the part-B qubit.
    b_op: GateMatrix<f64>,
}

/// A circuit op lowered onto the two parts.
enum PartOp {
    /// Gate entirely inside part A (qubit indices already local).
    ALocal { qubits: Vec<usize>, matrix: GateMatrix<f64> },
    /// Gate entirely inside part B (indices re-based to the part).
    BLocal { qubits: Vec<usize>, matrix: GateMatrix<f64> },
    /// Two-qubit gate across the cut, decomposed into Schmidt terms.
    Crossing { qa: usize, qb: usize, terms: Vec<SchmidtTerm> },
}

/// The hybrid simulator: a fixed cut position.
#[derive(Debug, Clone, Copy)]
pub struct HybridSimulator {
    /// Qubits `0..part_a_qubits` form part A; the rest form part B.
    pub part_a_qubits: usize,
}

impl HybridSimulator {
    /// Simulator with the cut after `part_a_qubits` qubits.
    pub fn new(part_a_qubits: usize) -> Self {
        HybridSimulator { part_a_qubits }
    }

    /// Lower a circuit onto the parts, decomposing crossing gates.
    fn lower(&self, circuit: &Circuit) -> Result<Vec<PartOp>, HybridError> {
        let n = circuit.num_qubits;
        let k = self.part_a_qubits;
        if k == 0 || k >= n {
            return Err(HybridError::BadCut { num_qubits: n, part_a: k });
        }
        let mut ops = Vec::with_capacity(circuit.ops.len());
        for op in &circuit.ops {
            if op.is_measurement() {
                return Err(HybridError::MeasurementUnsupported);
            }
            let (sorted, matrix) = op.sorted_matrix::<f64>().expect("unitary gate");
            let in_a = sorted.iter().filter(|&&q| q < k).count();
            if in_a == sorted.len() {
                ops.push(PartOp::ALocal { qubits: sorted, matrix });
            } else if in_a == 0 {
                let qubits = sorted.iter().map(|&q| q - k).collect();
                ops.push(PartOp::BLocal { qubits, matrix });
            } else {
                if sorted.len() != 2 {
                    return Err(HybridError::WideCrossingGate { qubits: sorted });
                }
                // sorted[0] < k <= sorted[1]; sorted convention: bit 0 ↔
                // sorted[0] (the A-side qubit) — exactly what the block
                // decomposition below assumes.
                let qa = sorted[0];
                let qb = sorted[1] - k;
                let mut terms = Vec::new();
                for a_out in 0..2usize {
                    for a_in in 0..2usize {
                        let mut b = GateMatrix::<f64>::zeros(2);
                        let mut nonzero = false;
                        for b_out in 0..2usize {
                            for b_in in 0..2usize {
                                let v = matrix.get(a_out | (b_out << 1), a_in | (b_in << 1));
                                if v.re != 0.0 || v.im != 0.0 {
                                    nonzero = true;
                                }
                                b.set(b_out, b_in, v);
                            }
                        }
                        if !nonzero {
                            continue;
                        }
                        let mut a = GateMatrix::<f64>::zeros(2);
                        a.set(a_out, a_in, Cplx::one());
                        terms.push(SchmidtTerm { a_op: a, b_op: b });
                    }
                }
                ops.push(PartOp::Crossing { qa, qb, terms });
            }
        }
        Ok(ops)
    }

    /// Number of Feynman paths the cut induces (product of the crossing
    /// gates' branch factors).
    pub fn num_paths(&self, circuit: &Circuit) -> Result<u64, HybridError> {
        let ops = self.lower(circuit)?;
        Ok(ops
            .iter()
            .map(|op| match op {
                PartOp::Crossing { terms, .. } => terms.len() as u64,
                _ => 1,
            })
            .product())
    }

    /// Choose the cut position minimizing total cost
    /// `paths × (2^k + 2^{n−k})` — the knob a qsimh user tunes by hand.
    /// Returns `(simulator, paths)` for the best cut, or an error if no
    /// cut is valid (e.g. a wide gate at every position).
    pub fn best_cut(circuit: &Circuit) -> Result<(Self, u64), HybridError> {
        let n = circuit.num_qubits;
        let mut best: Option<(Self, u64, f64)> = None;
        let mut last_err = HybridError::BadCut { num_qubits: n, part_a: 0 };
        for k in 1..n {
            let sim = HybridSimulator::new(k);
            match sim.num_paths(circuit) {
                Ok(paths) => {
                    let cost = paths as f64 * ((1u64 << k) as f64 + (1u64 << (n - k)) as f64);
                    if best.as_ref().is_none_or(|&(_, _, c)| cost < c) {
                        best = Some((sim, paths, cost));
                    }
                }
                Err(e) => last_err = e,
            }
        }
        best.map(|(sim, paths, _)| (sim, paths)).ok_or(last_err)
    }

    /// Amplitudes of the requested basis states after running `circuit`
    /// from `|0…0⟩` (bit `q` of a bitstring = qubit `q`).
    pub fn amplitudes(
        &self,
        circuit: &Circuit,
        bitstrings: &[u64],
    ) -> Result<Vec<Cplx<f64>>, HybridError> {
        let ops = self.lower(circuit)?;
        let k = self.part_a_qubits;
        let m = circuit.num_qubits - k;
        let a_mask = (1u64 << k) - 1;

        let mut out = vec![Cplx::<f64>::zero(); bitstrings.len()];
        let mut state_a = vec![Cplx::<f64>::zero(); 1 << k];
        let mut state_b = vec![Cplx::<f64>::zero(); 1 << m];
        state_a[0] = Cplx::one();
        state_b[0] = Cplx::one();

        // Recursive path walk with prefix sharing: local ops mutate the
        // current states in place; each crossing gate clones per term.
        fn walk(
            ops: &[PartOp],
            mut state_a: Vec<Cplx<f64>>,
            mut state_b: Vec<Cplx<f64>>,
            bitstrings: &[u64],
            a_mask: u64,
            k: usize,
            out: &mut [Cplx<f64>],
        ) {
            for (i, op) in ops.iter().enumerate() {
                match op {
                    PartOp::ALocal { qubits, matrix } => {
                        apply_gate_slice_seq(&mut state_a, qubits, matrix);
                    }
                    PartOp::BLocal { qubits, matrix } => {
                        apply_gate_slice_seq(&mut state_b, qubits, matrix);
                    }
                    PartOp::Crossing { qa, qb, terms } => {
                        for term in terms {
                            let mut sa = state_a.clone();
                            let mut sb = state_b.clone();
                            apply_gate_slice_seq(&mut sa, &[*qa], &term.a_op);
                            apply_gate_slice_seq(&mut sb, &[*qb], &term.b_op);
                            walk(&ops[i + 1..], sa, sb, bitstrings, a_mask, k, out);
                        }
                        return;
                    }
                }
            }
            // Path complete: accumulate products.
            for (slot, &bits) in out.iter_mut().zip(bitstrings) {
                let xa = (bits & a_mask) as usize;
                let xb = (bits >> k) as usize;
                *slot += state_a[xa] * state_b[xb];
            }
        }

        walk(&ops, state_a, state_b, bitstrings, a_mask, k, &mut out);
        Ok(out)
    }

    /// The full state vector via the hybrid path sum (exponential in `n`;
    /// for validation at small sizes).
    pub fn full_state(&self, circuit: &Circuit) -> Result<StateVector<f64>, HybridError> {
        let n = circuit.num_qubits;
        let all: Vec<u64> = (0..1u64 << n).collect();
        let amps = self.amplitudes(circuit, &all)?;
        Ok(StateVector::from_amplitudes(amps))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim_circuit::gates::GateKind;
    use qsim_circuit::library;
    use qsim_core::kernels::apply_gate_seq;

    fn direct_state(circuit: &Circuit) -> StateVector<f64> {
        let mut state = StateVector::new(circuit.num_qubits);
        for op in &circuit.ops {
            let (qs, matrix) = op.sorted_matrix::<f64>().expect("unitary");
            apply_gate_seq(&mut state, &qs, &matrix);
        }
        state
    }

    #[test]
    fn bell_across_the_cut() {
        let circuit = library::bell();
        let hybrid = HybridSimulator::new(1);
        let state = hybrid.full_state(&circuit).expect("hybrid");
        assert!(direct_state(&circuit).max_abs_diff(&state) < 1e-14);
        // CNOT has two non-zero blocks ⇒ two paths.
        assert_eq!(hybrid.num_paths(&circuit).unwrap(), 2);
    }

    #[test]
    fn ghz_chain_single_crossing() {
        let circuit = library::ghz(6);
        for cut in 1..6 {
            let hybrid = HybridSimulator::new(cut);
            let state = hybrid.full_state(&circuit).expect("hybrid");
            assert!(direct_state(&circuit).max_abs_diff(&state) < 1e-13, "cut at {cut}");
        }
    }

    #[test]
    fn branch_factors_match_gate_structure() {
        // CZ is diagonal in the cut index: 2 paths. fSim: 4 paths.
        let mut c = Circuit::new(2);
        c.add(0, GateKind::Cz, &[0, 1]);
        assert_eq!(HybridSimulator::new(1).num_paths(&c).unwrap(), 2);

        let mut c = Circuit::new(2);
        c.add(0, GateKind::FSim(0.4, 0.7), &[0, 1]);
        assert_eq!(HybridSimulator::new(1).num_paths(&c).unwrap(), 4);

        let mut c = Circuit::new(2);
        c.add(0, GateKind::ISwap, &[0, 1]);
        // iSwap blocks: E00→|0⟩⟨0| part… nonzero blocks are (0,0),(0,1),
        // (1,0),(1,1)? Its matrix has entries at (0,0),(1,2),(2,1),(3,3):
        // blocks (a_out,a_in) = (0,0): diag(1,0); (1,0): b(0,1)... count:
        assert_eq!(HybridSimulator::new(1).num_paths(&c).unwrap(), 4);

        // Two crossing CZs multiply: 4 paths.
        let mut c = Circuit::new(2);
        c.add(0, GateKind::Cz, &[0, 1]);
        c.add(1, GateKind::Cz, &[0, 1]);
        assert_eq!(HybridSimulator::new(1).num_paths(&c).unwrap(), 4);
    }

    #[test]
    fn random_circuits_match_direct_simulation() {
        for seed in 0..6 {
            let circuit = library::random_dense(7, 30, seed);
            let hybrid = HybridSimulator::new(3);
            let paths = hybrid.num_paths(&circuit).unwrap();
            assert!(paths >= 1);
            let state = hybrid.full_state(&circuit).expect("hybrid");
            let diff = direct_state(&circuit).max_abs_diff(&state);
            assert!(diff < 1e-11, "seed {seed}: diff {diff} ({paths} paths)");
        }
    }

    #[test]
    fn rqc_matches_direct_simulation() {
        let circuit = qsim_circuit::generate_rqc(&qsim_circuit::RqcOptions::for_qubits(8, 3, 5));
        let hybrid = HybridSimulator::new(4);
        let state = hybrid.full_state(&circuit).expect("hybrid");
        assert!(direct_state(&circuit).max_abs_diff(&state) < 1e-11);
    }

    #[test]
    fn selected_amplitudes_only() {
        let circuit = library::random_dense(6, 25, 7);
        let hybrid = HybridSimulator::new(3);
        let queries = [0u64, 5, 17, 63];
        let amps = hybrid.amplitudes(&circuit, &queries).expect("hybrid");
        let direct = direct_state(&circuit);
        for (&q, a) in queries.iter().zip(&amps) {
            assert!(a.dist(direct.amplitude(q as usize)) < 1e-12, "bitstring {q}");
        }
    }

    #[test]
    fn qft_across_cut() {
        let circuit = library::qft(6);
        let hybrid = HybridSimulator::new(3);
        let state = hybrid.full_state(&circuit).expect("hybrid");
        assert!(direct_state(&circuit).max_abs_diff(&state) < 1e-12);
    }

    #[test]
    fn bad_cut_rejected() {
        let circuit = library::bell();
        assert!(matches!(
            HybridSimulator::new(0).amplitudes(&circuit, &[0]),
            Err(HybridError::BadCut { .. })
        ));
        assert!(matches!(
            HybridSimulator::new(2).amplitudes(&circuit, &[0]),
            Err(HybridError::BadCut { .. })
        ));
    }

    #[test]
    fn measurement_rejected() {
        let mut c = Circuit::new(2);
        c.add(0, GateKind::H, &[0]);
        c.add(1, GateKind::Measurement, &[0]);
        assert_eq!(
            HybridSimulator::new(1).amplitudes(&c, &[0]).unwrap_err(),
            HybridError::MeasurementUnsupported
        );
    }

    #[test]
    fn best_cut_prefers_few_crossings() {
        // GHZ chain: cutting anywhere crosses exactly one CNOT, so the
        // cost is minimized at the balanced middle cut.
        let circuit = library::ghz(8);
        let (sim, paths) = HybridSimulator::best_cut(&circuit).expect("cut");
        assert_eq!(sim.part_a_qubits, 4, "balanced cut expected");
        assert_eq!(paths, 2);

        // A circuit entangling only qubits 0-1 heavily: best cut isolates
        // that block rather than splitting it.
        let mut c = Circuit::new(6);
        for t in 0..6 {
            c.add(t, GateKind::FSim(0.3, 0.4), &[0, 1]);
        }
        c.add(6, GateKind::Cz, &[2, 3]);
        let (sim, paths) = HybridSimulator::best_cut(&c).expect("cut");
        assert_ne!(sim.part_a_qubits, 1, "must not split the fSim block");
        assert!(paths <= 2, "at most the single CZ crossing: {paths}");
        // And the chosen cut still reproduces the state.
        let state = sim.full_state(&c).expect("run");
        assert!(direct_state(&c).max_abs_diff(&state) < 1e-12);
    }

    #[test]
    fn norm_of_hybrid_state_is_one() {
        let circuit = library::random_dense(6, 20, 11);
        let state = HybridSimulator::new(2).full_state(&circuit).expect("hybrid");
        let norm: f64 = state.amplitudes().iter().map(|a| a.norm_sqr()).sum();
        assert!((norm - 1.0).abs() < 1e-11);
    }
}
