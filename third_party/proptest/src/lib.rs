//! Offline stand-in for [proptest]: the `proptest!` / `prop_assert!` /
//! `prop_assert_eq!` macros and the strategy combinators this workspace
//! uses (numeric ranges, `prop::collection::vec`, `prop::sample::select`,
//! tuples, and simple `CLASS{m,n}` string regexes).
//!
//! Semantics differ from upstream in two deliberate ways: cases are
//! generated from a deterministic per-test seed (reproducible runs with
//! no persistence files), and there is no shrinking — a failing case
//! reports its case number and values instead. For the equivalence
//! properties in this workspace (exact or 1e-12-tolerance comparisons over
//! random circuits) that trade keeps failures debuggable while making the
//! harness dependency-free.
//!
//! [proptest]: https://crates.io/crates/proptest

use std::collections::hash_map::DefaultHasher;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Range, RangeInclusive};

pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, proptest, ProptestConfig, Strategy,
        TestCaseError,
    };
}

/// Runner configuration; only `cases` is honoured.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// A failed property (produced by the `prop_assert*` macros).
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// xoshiro256++ with SplitMix64 seeding, embedded so this crate stays
/// dependency-free.
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    pub fn from_seed(seed: u64) -> Self {
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng { s: [next(), next(), next(), next()] }
    }

    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        let zone = n.wrapping_mul(u64::MAX / n);
        loop {
            let v = self.next_u64();
            if zone == 0 || v < zone {
                return v % n;
            }
        }
    }
}

/// Deterministic per-(test, case) RNG used by the `proptest!` expansion.
pub fn rng_for(test_name: &str, case: u32) -> TestRng {
    let mut h = DefaultHasher::new();
    test_name.hash(&mut h);
    case.hash(&mut h);
    TestRng::from_seed(h.finish())
}

/// A generator of random values.
pub trait Strategy {
    type Value;
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + rng.below(span) as i128) as $t
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                lo + (rng.unit_f64() as $t) * (hi - lo)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// String strategies: a single `.` or `[class]` atom with a `{min,max}`
/// repetition, e.g. `".{0,400}"` or `"[ .0-9e-]{0,12}"`. Anything else is
/// rejected loudly so unsupported patterns cannot silently weaken a test.
impl Strategy for &str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let (chars, min, max) = parse_simple_regex(self)
            .unwrap_or_else(|| panic!("unsupported string strategy pattern: {self:?}"));
        let len = min + rng.below((max - min + 1) as u64) as usize;
        (0..len).map(|_| chars[rng.below(chars.len() as u64) as usize]).collect()
    }
}

fn parse_simple_regex(pat: &str) -> Option<(Vec<char>, usize, usize)> {
    let (atom, rep) = match pat.strip_prefix('.') {
        Some(rest) => (None, rest),
        None => {
            let rest = pat.strip_prefix('[')?;
            let close = rest.find(']')?;
            (Some(&rest[..close]), &rest[close + 1..])
        }
    };
    let rep = rep.strip_prefix('{')?.strip_suffix('}')?;
    let (min_s, max_s) = rep.split_once(',')?;
    let (min, max) = (min_s.trim().parse().ok()?, max_s.trim().parse().ok()?);
    let chars = match atom {
        // `.`: printable ASCII (upstream generates arbitrary chars; printable
        // is the interesting subset for parser-robustness properties).
        None => (0x20u8..=0x7e).map(char::from).collect(),
        Some(class) => {
            let cs: Vec<char> = class.chars().collect();
            let mut out = Vec::new();
            let mut i = 0;
            while i < cs.len() {
                if i + 2 < cs.len() && cs[i + 1] == '-' {
                    let (a, b) = (cs[i] as u32, cs[i + 2] as u32);
                    for cp in a..=b {
                        out.push(char::from_u32(cp)?);
                    }
                    i += 3;
                } else {
                    out.push(cs[i]);
                    i += 1;
                }
            }
            out
        }
    };
    if chars.is_empty() || max < min {
        return None;
    }
    Some((chars, min, max))
}

macro_rules! impl_strategy_tuple {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.sample(rng),)+)
            }
        }
    )*};
}
impl_strategy_tuple! {
    (A) (A, B) (A, B, C) (A, B, C, D) (A, B, C, D, E) (A, B, C, D, E, F)
}

/// The `prop::` namespace from proptest's prelude.
pub mod prop {
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use std::ops::Range;

        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// `prop::collection::vec(element, size_range)`.
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            assert!(size.start < size.end, "empty vec size range");
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let span = (self.size.end - self.size.start) as u64;
                let len = self.size.start + rng.below(span) as usize;
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }
    }

    pub mod sample {
        use super::super::{Strategy, TestRng};

        pub struct Select<T> {
            options: Vec<T>,
        }

        /// `prop::sample::select(options)` — uniform choice.
        pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs at least one option");
            Select { options }
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;
            fn sample(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }
    }
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (cfg = $cfg:expr;) => {};
    (cfg = $cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident ( $($arg:ident in $strat:expr),* $(,)? ) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __config: $crate::ProptestConfig = $cfg;
            for __case in 0..__config.cases {
                let mut __rng = $crate::rng_for(stringify!($name), __case);
                $(let $arg = $crate::Strategy::sample(&($strat), &mut __rng);)*
                let __result: ::std::result::Result<(), $crate::TestCaseError> =
                    (|| { $body ::std::result::Result::Ok(()) })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest `{}` failed at case {}/{}: {}",
                        stringify!($name), __case, __config.cases, e
                    );
                }
            }
        }
        $crate::__proptest_fns! { cfg = $cfg; $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l != *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(
            n in 2usize..8,
            s in 0u64..10_000,
            x in -4i64..9,
            f in 0.0f64..1e3,
            m in 1usize..=6,
        ) {
            prop_assert!((2..8).contains(&n));
            prop_assert!(s < 10_000);
            prop_assert!((-4..9).contains(&x));
            prop_assert!((0.0..1e3).contains(&f));
            prop_assert!((1..=6).contains(&m));
        }

        /// Doc comments and extra attributes pass through.
        #[test]
        fn composite_strategies(
            v in prop::collection::vec(0.0f64..10.0, 1..50),
            pick in prop::sample::select(vec![32u32, 64, 128]),
            text in "[ a-c]{0,12}",
            any in ".{0,40}",
            tup in (0usize..30, prop::sample::select(vec!["h", "x"]), -10i64..40),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(matches!(pick, 32 | 64 | 128));
            prop_assert!(text.len() <= 12);
            prop_assert!(text.chars().all(|c| c == ' ' || ('a'..='c').contains(&c)));
            prop_assert!(any.len() <= 40);
            prop_assert_eq!(tup.0, tup.0);
            prop_assert!(tup.1 == "h" || tup.1 == "x");
        }
    }

    #[test]
    fn deterministic_per_test_stream() {
        let a: Vec<u64> = (0..4).map(|c| crate::rng_for("t", c).next_u64()).collect();
        let b: Vec<u64> = (0..4).map(|c| crate::rng_for("t", c).next_u64()).collect();
        assert_eq!(a, b);
        assert_ne!(a[0], a[1]);
    }

    #[test]
    fn failing_property_panics_with_case_info() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            #[allow(dead_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        let err = std::panic::catch_unwind(always_fails).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("always_fails"), "{msg}");
    }
}
