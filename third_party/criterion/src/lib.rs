//! Offline stand-in for [criterion]: the `Criterion` / `BenchmarkGroup` /
//! `Bencher` API surface this workspace's benches use, measuring with
//! plain wall-clock sampling.
//!
//! Two modes, keyed off the `--bench` argument cargo passes to
//! `harness = false` bench targets:
//!
//! * **bench mode** (`cargo bench`): each benchmark runs for up to
//!   `sample_size` samples or ~2 s, then prints min/median/mean and
//!   optional throughput.
//! * **smoke mode** (anything else, e.g. `cargo test` building/running the
//!   target): each benchmark executes exactly one iteration, so the
//!   closure is exercised for correctness without burning CI time.
//!
//! No plotting, no statistics beyond the order stats above, no baseline
//! files — deliberate; this exists so benches compile and run offline.
//!
//! [criterion]: https://crates.io/crates/criterion

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

const MAX_SAMPLE_TIME: Duration = Duration::from_secs(2);

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Bytes(u64),
    Elements(u64),
}

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

pub struct Criterion {
    bench_mode: bool,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { bench_mode: std::env::args().any(|a| a == "--bench") }
    }
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into(), sample_size: 20, throughput: None }
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let bench_mode = self.bench_mode;
        run_one(&id.into().id, bench_mode, 20, None, f);
        self
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample_size must be positive");
        self.sample_size = n;
        self
    }

    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    pub fn bench_function(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        run_one(&full, self.criterion.bench_mode, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.id);
        run_one(&full, self.criterion.bench_mode, self.sample_size, self.throughput, |b| {
            f(b, input)
        });
        self
    }

    pub fn finish(self) {}
}

pub struct Bencher {
    bench_mode: bool,
    sample_size: usize,
    samples: Vec<Duration>,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if !self.bench_mode {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            return;
        }
        black_box(routine()); // warm-up
        let budget = Instant::now();
        for _ in 0..self.sample_size {
            let start = Instant::now();
            black_box(routine());
            self.samples.push(start.elapsed());
            if budget.elapsed() > MAX_SAMPLE_TIME {
                break;
            }
        }
    }
}

fn run_one(
    label: &str,
    bench_mode: bool,
    sample_size: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut b = Bencher { bench_mode, sample_size, samples: Vec::new() };
    f(&mut b);
    if b.samples.is_empty() {
        println!("{label:<50} (no samples)");
        return;
    }
    b.samples.sort();
    let n = b.samples.len();
    let median = b.samples[n / 2];
    let min = b.samples[0];
    let mean = b.samples.iter().sum::<Duration>() / n as u32;
    let mut line = format!(
        "{label:<50} min {:>12}  median {:>12}  mean {:>12}  ({n} samples)",
        fmt_dur(min),
        fmt_dur(median),
        fmt_dur(mean),
    );
    if let Some(t) = throughput {
        let per_sec = |units: u64| units as f64 / median.as_secs_f64();
        match t {
            Throughput::Bytes(bytes) => {
                line.push_str(&format!(
                    "  thrpt {:.3} GiB/s",
                    per_sec(bytes) / (1024.0 * 1024.0 * 1024.0)
                ));
            }
            Throughput::Elements(elems) => {
                line.push_str(&format!("  thrpt {:.3e} elem/s", per_sec(elems)));
            }
        }
    }
    println!("{line}");
}

fn fmt_dur(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 10_000 {
        format!("{ns} ns")
    } else if ns < 10_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 10_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_mode_runs_once() {
        let mut c = Criterion { bench_mode: false };
        let mut group = c.benchmark_group("g");
        let mut count = 0;
        group.bench_function("one", |b| b.iter(|| count += 1));
        group.finish();
        assert_eq!(count, 1);
    }

    #[test]
    fn bench_mode_collects_samples() {
        let mut c = Criterion { bench_mode: true };
        let mut group = c.benchmark_group("g");
        group.sample_size(5).throughput(Throughput::Bytes(1024));
        let mut count = 0u64;
        group.bench_with_input(BenchmarkId::new("f", 3), &3u64, |b, &x| b.iter(|| count += x));
        group.finish();
        assert_eq!(count, 3 * 6); // 1 warm-up + 5 samples
    }
}
