//! Offline stand-in for [serde], reshaped around a concrete JSON-like
//! [`Value`] tree instead of upstream's visitor machinery: `Serialize`
//! lowers to a `Value`, `Deserialize` lifts from one, and `serde_json`
//! (the companion shim) handles text. There is no proc-macro `derive` —
//! impls are written by hand or generated with the
//! [`impl_serde_struct!`] / [`impl_serde_unit_enum!`] macros, which
//! reproduce derive's field-name/variant-name encoding.
//!
//! [serde]: https://crates.io/crates/serde

use std::fmt;

/// A JSON-shaped value tree. Numbers are stored as `f64` (exact for all
/// integers up to 2^53, far beyond anything this workspace serializes);
/// objects preserve insertion order.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Number(f64),
    String(String),
    Array(Vec<Value>),
    Object(Vec<(String, Value)>),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= 9.007_199_254_740_992e15 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 => {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Vec<(String, Value)>> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Object field lookup; `None` on missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(o) => o.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl std::ops::Index<&str> for Value {
    type Output = Value;
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl std::ops::Index<usize> for Value {
    type Output = Value;
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl PartialEq<f64> for Value {
    fn eq(&self, other: &f64) -> bool {
        self.as_f64() == Some(*other)
    }
}

impl PartialEq<u64> for Value {
    fn eq(&self, other: &u64) -> bool {
        self.as_u64() == Some(*other)
    }
}

impl PartialEq<bool> for Value {
    fn eq(&self, other: &bool) -> bool {
        self.as_bool() == Some(*other)
    }
}

/// Deserialization failure: what was expected, where.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(pub String);

impl Error {
    pub fn msg(m: impl Into<String>) -> Self {
        Error(m.into())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Look up and deserialize one object field (used by `impl_serde_struct!`).
pub fn field<T: Deserialize>(v: &Value, name: &str) -> Result<T, Error> {
    let f = v.get(name).ok_or_else(|| Error(format!("missing field `{name}`")))?;
    T::from_value(f).map_err(|e| Error(format!("field `{name}`: {e}")))
}

// ---- primitive impls ----

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error(format!("expected bool, got {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_string).ok_or_else(|| Error(format!("expected string, got {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::Number(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error(format!("expected number, got {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::Number(*self as f64)
    }
}

impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_value(v)? as f32)
    }
}

macro_rules! impl_serde_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Number(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let n = v.as_f64().ok_or_else(|| Error(format!("expected integer, got {v:?}")))?;
                if n.fract() != 0.0 {
                    return Err(Error(format!("expected integer, got {n}")));
                }
                Ok(n as $t)
            }
        }
    )*};
}
impl_serde_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error(format!("expected array, got {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

/// Generate `Serialize` + `Deserialize` for a struct with named fields,
/// matching derive's `{"field": value, ...}` encoding.
#[macro_export]
macro_rules! impl_serde_struct {
    ($ty:ty { $($field:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::Object(vec![
                    $((stringify!($field).to_string(), $crate::Serialize::to_value(&self.$field)),)+
                ])
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                ::std::result::Result::Ok(Self {
                    $($field: $crate::field(v, stringify!($field))?,)+
                })
            }
        }
    };
}

/// Generate `Serialize` + `Deserialize` for a field-less enum, matching
/// derive's `"Variant"` string encoding.
#[macro_export]
macro_rules! impl_serde_unit_enum {
    ($ty:ty { $($variant:ident),+ $(,)? }) => {
        impl $crate::Serialize for $ty {
            fn to_value(&self) -> $crate::Value {
                $crate::Value::String(
                    match self {
                        $(<$ty>::$variant => stringify!($variant),)+
                    }
                    .to_string(),
                )
            }
        }
        impl $crate::Deserialize for $ty {
            fn from_value(v: &$crate::Value) -> ::std::result::Result<Self, $crate::Error> {
                match v.as_str() {
                    $(::std::option::Option::Some(stringify!($variant)) =>
                        ::std::result::Result::Ok(<$ty>::$variant),)+
                    _ => ::std::result::Result::Err($crate::Error(format!(
                        concat!("invalid ", stringify!($ty), " variant: {:?}"),
                        v
                    ))),
                }
            }
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    struct Demo {
        a: u32,
        b: String,
        c: Option<f64>,
    }
    impl_serde_struct!(Demo { a, b, c });

    #[derive(Debug, PartialEq)]
    enum Kind {
        Alpha,
        Beta,
    }
    impl_serde_unit_enum!(Kind { Alpha, Beta });

    #[test]
    fn struct_roundtrip() {
        let d = Demo { a: 7, b: "x".into(), c: None };
        let v = d.to_value();
        assert_eq!(v["a"], 7u64);
        assert_eq!(Demo::from_value(&v).unwrap(), d);
    }

    #[test]
    fn enum_roundtrip() {
        let v = Kind::Beta.to_value();
        assert_eq!(v, "Beta");
        assert_eq!(Kind::from_value(&v).unwrap(), Kind::Beta);
        assert!(Kind::from_value(&Value::String("Gamma".into())).is_err());
    }

    #[test]
    fn index_missing_is_null() {
        let v = Value::Object(vec![]);
        assert!(v["nope"].is_null());
        assert!(v["nope"]["deeper"].is_null());
    }
}
