//! Offline stand-in for the [rand] crate covering the workspace's usage:
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, `Rng::gen_bool`
//! with `R: Rng + ?Sized` bounds.
//!
//! The generator is xoshiro256++ seeded through SplitMix64 — a different
//! stream than upstream `StdRng` (ChaCha12), which is fine here: every
//! consumer treats seeds as opaque reproducibility handles, never as a
//! contract on specific values. Integer ranges use rejection sampling
//! (no modulo bias); floats use the standard 53-bit / 24-bit mantissa
//! construction in `[0, 1)`.
//!
//! [rand]: https://crates.io/crates/rand

use std::ops::{Range, RangeInclusive};

pub mod rngs {
    pub use crate::StdRng;
}

/// Raw 64-bit generator core.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// High-level sampling methods, available on every `RngCore`.
pub trait Rng: RngCore {
    fn gen<T: StandardSample>(&mut self) -> T {
        T::sample_standard(self)
    }

    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_in(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability {p} not in [0, 1]");
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

/// xoshiro256++ (Blackman & Vigna) — fast, equidistributed, and more than
/// adequate for simulation sampling.
#[derive(Debug, Clone)]
pub struct StdRng {
    s: [u64; 4],
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, the recommended seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        StdRng { s: [next(), next(), next(), next()] }
    }
}

impl RngCore for StdRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// Types samplable uniformly over their "standard" domain (`[0, 1)` for
/// floats, the full range for integers).
pub trait StandardSample {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl StandardSample for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl StandardSample for $t {
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = n.wrapping_mul(u64::MAX / n);
    loop {
        let v = rng.next_u64();
        if zone == 0 || v < zone {
            return v % n;
        }
    }
}

/// Ranges a value can be drawn from uniformly.
pub trait SampleRange<T> {
    fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u128;
                if span > u64::MAX as u128 {
                    return rng.next_u64() as $t; // full-width range
                }
                (lo as i128 + uniform_below(rng, span as u64) as i128) as $t
            }
        }
    )*};
}
impl_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u: $t = StandardSample::sample_standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_in<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let u: $t = StandardSample::sample_standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}
impl_range_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_floats_in_range() {
        let mut r = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f64 = r.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_bounds_hold() {
        let mut r = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let v = r.gen_range(5usize..17);
            assert!((5..17).contains(&v));
            let w = r.gen_range(-4i64..9);
            assert!((-4..9).contains(&w));
            let f = r.gen_range(-1.5f64..2.5);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn unsized_rng_bound_works() {
        fn draw<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(1);
        assert!(draw(&mut r) < 1.0);
    }

    #[test]
    fn mean_is_roughly_half() {
        let mut r = StdRng::seed_from_u64(11);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen::<f64>()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
