//! Offline stand-in for [rayon], exposing the subset of its API this
//! workspace uses: `par_iter` / `par_iter_mut` / `into_par_iter` /
//! `par_chunks` / `par_chunks_mut` sources, the `map` / `filter` /
//! `enumerate` / `zip` / `with_min_len` adapters, and the `for_each` /
//! `for_each_init` / `sum` / `reduce` drivers.
//!
//! Parallelism is real: each consuming driver splits the iterator into
//! contiguous pieces (at most one per available core, respecting
//! `with_min_len`) and runs them on scoped OS threads. There is no
//! work-stealing pool — pieces are equal-sized and threads are joined at
//! the end of every call — which is a good fit for the flat, regular
//! loops of a state-vector simulator, and keeps this crate dependency-free
//! so the workspace builds without network access.
//!
//! [rayon]: https://crates.io/crates/rayon

use std::iter::Sum;
use std::ops::Range;
use std::sync::Arc;
use std::thread;

pub mod prelude {
    pub use crate::{
        IntoParallelIterator, IntoParallelRefIterator, IntoParallelRefMutIterator,
        ParallelIterator, ParallelSlice, ParallelSliceMut,
    };
}

/// Number of worker threads a driver may use (one piece per thread).
pub fn current_num_threads() -> usize {
    thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

fn plan_pieces(len: usize, min_len: usize) -> usize {
    if len == 0 {
        return 1;
    }
    let cap = if min_len <= 1 { len } else { len.div_ceil(min_len) };
    current_num_threads().min(cap).max(1)
}

fn split_into<P: ParallelIterator>(mut it: P, pieces: usize) -> Vec<P> {
    let mut out = Vec::with_capacity(pieces);
    let mut remaining = pieces;
    while remaining > 1 {
        let take = it.len() / remaining;
        let (head, tail) = it.split_at(take);
        out.push(head);
        it = tail;
        remaining -= 1;
    }
    out.push(it);
    out
}

/// Fold every piece on its own thread and collect the per-piece
/// accumulators. All drivers funnel through here.
fn fold_pieces<P, A>(
    it: P,
    init: &(impl Fn() -> A + Sync),
    fold: &(impl Fn(&mut A, P::Item) + Sync),
) -> Vec<A>
where
    P: ParallelIterator,
    A: Send,
{
    let pieces = plan_pieces(it.len(), it.min_len());
    if pieces <= 1 {
        let mut acc = init();
        it.drive_seq(&mut |x| fold(&mut acc, x));
        return vec![acc];
    }
    let parts = split_into(it, pieces);
    thread::scope(|s| {
        let handles: Vec<_> = parts
            .into_iter()
            .map(|p| {
                s.spawn(move || {
                    let mut acc = init();
                    p.drive_seq(&mut |x| fold(&mut acc, x));
                    acc
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect()
    })
}

/// A splittable, exactly-sized parallel iterator.
///
/// Unlike rayon's producer/consumer machinery this is deliberately small:
/// sources know their length and how to split at an index, and adapters
/// preserve both.
pub trait ParallelIterator: Sized + Send {
    type Item: Send;

    /// Remaining number of items (an upper bound for `filter`).
    fn len(&self) -> usize;
    /// Split into `[0, index)` and `[index, len)`.
    fn split_at(self, index: usize) -> (Self, Self);
    /// Run the piece sequentially, pushing each item into `f`.
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item));
    /// Smallest piece worth moving to another thread.
    fn min_len(&self) -> usize {
        1
    }

    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    // ---- adapters ----

    fn with_min_len(self, min: usize) -> WithMinLen<Self> {
        WithMinLen { inner: self, min }
    }

    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { inner: self, f: Arc::new(f) }
    }

    fn filter<F>(self, f: F) -> Filter<Self, F>
    where
        F: Fn(&Self::Item) -> bool + Sync + Send,
    {
        Filter { inner: self, f: Arc::new(f) }
    }

    fn enumerate(self) -> Enumerate<Self> {
        Enumerate { inner: self, base: 0 }
    }

    fn zip<B: ParallelIterator>(self, other: B) -> Zip<Self, B> {
        let n = self.len().min(other.len());
        let (a, _) = self.split_at(n);
        let (b, _) = other.split_at(n);
        Zip { a, b }
    }

    // ---- drivers ----

    fn for_each<F>(self, f: F)
    where
        F: Fn(Self::Item) + Sync + Send,
    {
        fold_pieces(self, &|| (), &|_acc, x| f(x));
    }

    fn for_each_init<T, INIT, F>(self, init: INIT, f: F)
    where
        T: Send,
        INIT: Fn() -> T + Sync + Send,
        F: Fn(&mut T, Self::Item) + Sync + Send,
    {
        fold_pieces(self, &init, &|t, x| f(t, x));
    }

    fn sum<S>(self) -> S
    where
        S: Sum<Self::Item> + Sum<S> + Send,
    {
        fold_pieces(self, &|| None::<S>, &|acc, x| {
            let v: S = std::iter::once(x).sum();
            *acc = Some(match acc.take() {
                None => v,
                Some(prev) => [prev, v].into_iter().sum(),
            });
        })
        .into_iter()
        .flatten()
        .sum()
    }

    fn reduce<ID, OP>(self, identity: ID, op: OP) -> Self::Item
    where
        ID: Fn() -> Self::Item + Sync + Send,
        OP: Fn(Self::Item, Self::Item) -> Self::Item + Sync + Send,
    {
        fold_pieces(self, &|| None::<Self::Item>, &|acc, x| {
            *acc = Some(match acc.take() {
                None => x,
                Some(prev) => op(prev, x),
            });
        })
        .into_iter()
        .flatten()
        .fold(identity(), &op)
    }

    fn count(self) -> usize {
        fold_pieces(self, &|| 0usize, &|acc, _| *acc += 1).into_iter().sum()
    }
}

// ---- adapter types ----

pub struct WithMinLen<I> {
    inner: I,
    min: usize,
}

impl<I: ParallelIterator> ParallelIterator for WithMinLen<I> {
    type Item = I::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (WithMinLen { inner: l, min: self.min }, WithMinLen { inner: r, min: self.min })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        self.inner.drive_seq(f)
    }
    fn min_len(&self) -> usize {
        self.inner.min_len().max(self.min)
    }
}

pub struct Map<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, R, F> ParallelIterator for Map<I, F>
where
    I: ParallelIterator,
    R: Send,
    F: Fn(I::Item) -> R + Sync + Send,
{
    type Item = R;

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Map { inner: l, f: self.f.clone() }, Map { inner: r, f: self.f })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        let g = self.f;
        self.inner.drive_seq(&mut |x| f(g(x)));
    }
    fn min_len(&self) -> usize {
        self.inner.min_len()
    }
}

pub struct Filter<I, F> {
    inner: I,
    f: Arc<F>,
}

impl<I, F> ParallelIterator for Filter<I, F>
where
    I: ParallelIterator,
    F: Fn(&I::Item) -> bool + Sync + Send,
{
    type Item = I::Item;

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Filter { inner: l, f: self.f.clone() }, Filter { inner: r, f: self.f })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        let keep = self.f;
        self.inner.drive_seq(&mut |x| {
            if keep(&x) {
                f(x)
            }
        });
    }
    fn min_len(&self) -> usize {
        self.inner.min_len()
    }
}

pub struct Enumerate<I> {
    inner: I,
    base: usize,
}

impl<I: ParallelIterator> ParallelIterator for Enumerate<I> {
    type Item = (usize, I::Item);

    fn len(&self) -> usize {
        self.inner.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.inner.split_at(index);
        (Enumerate { inner: l, base: self.base }, Enumerate { inner: r, base: self.base + index })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        let mut i = self.base;
        self.inner.drive_seq(&mut |x| {
            f((i, x));
            i += 1;
        });
    }
    fn min_len(&self) -> usize {
        self.inner.min_len()
    }
}

/// Invariant: `a.len() == b.len()` (enforced by the `zip` constructor and
/// preserved by `split_at`), so lock-step pairing in `drive_seq` is exact.
pub struct Zip<A, B> {
    a: A,
    b: B,
}

impl<A: ParallelIterator, B: ParallelIterator> ParallelIterator for Zip<A, B> {
    type Item = (A::Item, B::Item);

    fn len(&self) -> usize {
        self.a.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (a1, a2) = self.a.split_at(index);
        let (b1, b2) = self.b.split_at(index);
        (Zip { a: a1, b: b1 }, Zip { a: a2, b: b2 })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        // Push-based iteration cannot interleave two drivers, so buffer the
        // right side of this piece (pieces are at most len/threads items).
        let mut bs = Vec::with_capacity(self.b.len());
        self.b.drive_seq(&mut |y| bs.push(y));
        let mut it = bs.into_iter();
        self.a.drive_seq(&mut |x| {
            if let Some(y) = it.next() {
                f((x, y));
            }
        });
    }
    fn min_len(&self) -> usize {
        self.a.min_len().max(self.b.min_len())
    }
}

// ---- sources ----

pub struct ParIter<'a, T: Sync> {
    slice: &'a [T],
}

impl<'a, T: Sync> ParallelIterator for ParIter<'a, T> {
    type Item = &'a T;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at(index);
        (ParIter { slice: l }, ParIter { slice: r })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for x in self.slice {
            f(x);
        }
    }
}

pub struct ParIterMut<'a, T: Send> {
    slice: &'a mut [T],
}

impl<'a, T: Send> ParallelIterator for ParIterMut<'a, T> {
    type Item = &'a mut T;

    fn len(&self) -> usize {
        self.slice.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let (l, r) = self.slice.split_at_mut(index);
        (ParIterMut { slice: l }, ParIterMut { slice: r })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for x in self.slice {
            f(x);
        }
    }
}

pub struct Chunks<'a, T: Sync> {
    slice: &'a [T],
    size: usize,
}

impl<'a, T: Sync> ParallelIterator for Chunks<'a, T> {
    type Item = &'a [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at(at);
        (Chunks { slice: l, size: self.size }, Chunks { slice: r, size: self.size })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for c in self.slice.chunks(self.size) {
            f(c);
        }
    }
}

pub struct ChunksMut<'a, T: Send> {
    slice: &'a mut [T],
    size: usize,
}

impl<'a, T: Send> ParallelIterator for ChunksMut<'a, T> {
    type Item = &'a mut [T];

    fn len(&self) -> usize {
        self.slice.len().div_ceil(self.size)
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let at = (index * self.size).min(self.slice.len());
        let (l, r) = self.slice.split_at_mut(at);
        (ChunksMut { slice: l, size: self.size }, ChunksMut { slice: r, size: self.size })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for c in self.slice.chunks_mut(self.size) {
            f(c);
        }
    }
}

pub struct RangeIter {
    range: Range<usize>,
}

impl ParallelIterator for RangeIter {
    type Item = usize;

    fn len(&self) -> usize {
        self.range.len()
    }
    fn split_at(self, index: usize) -> (Self, Self) {
        let mid = self.range.start + index.min(self.range.len());
        (RangeIter { range: self.range.start..mid }, RangeIter { range: mid..self.range.end })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for i in self.range {
            f(i);
        }
    }
}

// ---- entry-point traits ----

pub trait IntoParallelIterator {
    type Item: Send;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn into_par_iter(self) -> Self::Iter;
}

impl IntoParallelIterator for Range<usize> {
    type Item = usize;
    type Iter = RangeIter;
    fn into_par_iter(self) -> RangeIter {
        RangeIter { range: self }
    }
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

pub struct VecIter<T: Send> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn len(&self) -> usize {
        self.items.len()
    }
    fn split_at(mut self, index: usize) -> (Self, Self) {
        let tail = self.items.split_off(index);
        (self, VecIter { items: tail })
    }
    fn drive_seq(self, f: &mut dyn FnMut(Self::Item)) {
        for x in self.items {
            f(x);
        }
    }
}

pub trait IntoParallelRefIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter(&'a self) -> Self::Iter;
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for [T] {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

impl<'a, T: Sync + 'a> IntoParallelRefIterator<'a> for Vec<T> {
    type Item = &'a T;
    type Iter = ParIter<'a, T>;
    fn par_iter(&'a self) -> ParIter<'a, T> {
        ParIter { slice: self }
    }
}

pub trait IntoParallelRefMutIterator<'a> {
    type Item: Send + 'a;
    type Iter: ParallelIterator<Item = Self::Item>;
    fn par_iter_mut(&'a mut self) -> Self::Iter;
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for [T] {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

impl<'a, T: Send + 'a> IntoParallelRefMutIterator<'a> for Vec<T> {
    type Item = &'a mut T;
    type Iter = ParIterMut<'a, T>;
    fn par_iter_mut(&'a mut self) -> ParIterMut<'a, T> {
        ParIterMut { slice: self }
    }
}

pub trait ParallelSlice<T: Sync> {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T>;
}

impl<T: Sync> ParallelSlice<T> for [T] {
    fn par_chunks(&self, size: usize) -> Chunks<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        Chunks { slice: self, size }
    }
}

pub trait ParallelSliceMut<T: Send> {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T>;
}

impl<T: Send> ParallelSliceMut<T> for [T] {
    fn par_chunks_mut(&mut self, size: usize) -> ChunksMut<'_, T> {
        assert!(size > 0, "chunk size must be non-zero");
        ChunksMut { slice: self, size }
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn sum_matches_sequential() {
        let v: Vec<u64> = (0..100_000).collect();
        let par: u64 = v.par_iter().with_min_len(64).map(|&x| x).sum();
        assert_eq!(par, v.iter().sum::<u64>());
    }

    #[test]
    fn for_each_mutates_every_element() {
        let mut v = vec![1i64; 10_000];
        v.par_iter_mut().with_min_len(16).for_each(|x| *x += 1);
        assert!(v.iter().all(|&x| x == 2));
    }

    #[test]
    fn enumerate_indices_are_global() {
        let v = vec![0usize; 5000];
        let total: usize = v.par_iter().enumerate().with_min_len(7).map(|(i, _)| i).sum();
        assert_eq!(total, 5000 * 4999 / 2);
    }

    #[test]
    fn zip_pairs_lockstep() {
        let a: Vec<usize> = (0..4096).collect();
        let b: Vec<usize> = (0..4096).rev().collect();
        let s: usize = a.par_iter().zip(b.par_iter()).with_min_len(13).map(|(x, y)| x + y).sum();
        assert_eq!(s, 4096 * 4095);
    }

    #[test]
    fn filter_reduce_and_ranges() {
        let total = (0..10_000usize)
            .into_par_iter()
            .with_min_len(11)
            .filter(|i| i % 3 == 0)
            .map(|i| (i, 1usize))
            .reduce(|| (0, 0), |a, b| (a.0 + b.0, a.1 + b.1));
        let expect: usize = (0..10_000).filter(|i| i % 3 == 0).sum();
        assert_eq!(total, (expect, 3334));
    }

    #[test]
    fn chunks_mut_cover_disjoint_blocks() {
        let mut v = vec![0u32; 1000];
        v.par_chunks_mut(64).enumerate().for_each(|(b, c)| {
            for x in c {
                *x = b as u32;
            }
        });
        assert_eq!(v[0], 0);
        assert_eq!(v[63], 0);
        assert_eq!(v[64], 1);
        assert_eq!(v[999], (999 / 64) as u32);
    }

    #[test]
    fn for_each_init_reuses_scratch() {
        let v: Vec<usize> = (0..2048).collect();
        let out: Vec<std::sync::Mutex<usize>> =
            (0..2048).map(|_| std::sync::Mutex::new(0)).collect();
        v.par_iter().with_min_len(32).for_each_init(
            || vec![0u8; 16],
            |scratch, &i| {
                scratch[0] = 1;
                *out[i].lock().unwrap() = i + 1;
            },
        );
        assert!((0..2048).all(|i| *out[i].lock().unwrap() == i + 1));
    }
}
