//! Offline stand-in for [serde_json]: a recursive-descent JSON parser and
//! a compact/pretty writer over the serde shim's [`Value`] tree.
//!
//! Numbers round-trip exactly: integral values within ±2^53 are printed
//! without a fractional part, everything else uses Rust's shortest
//! round-trip float formatting. Non-finite floats serialize as `null`
//! (upstream behaviour).
//!
//! [serde_json]: https://crates.io/crates/serde_json

use std::fmt::Write as _;

use serde::{Deserialize, Serialize};
pub use serde::{Error, Value};

pub type Result<T> = std::result::Result<T, Error>;

/// Convert any serializable value into a [`Value`] tree.
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    v.to_value()
}

pub fn from_value<T: Deserialize>(v: &Value) -> Result<T> {
    T::from_value(v)
}

pub fn to_string<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(v: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &v.to_value(), Some(2), 0);
    Ok(out)
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error(format!("trailing characters at byte {}", p.pos)));
    }
    T::from_value(&v)
}

/// Build a [`Value`] with JSON literal syntax. Values may be nested
/// `{...}` / `[...]` literals, `null`, or any single-token `Serialize`
/// expression (parenthesize anything longer, e.g. `(-3)` or `(a + b)`).
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($elem:tt),* $(,)? ]) => {
        $crate::Value::Array(vec![ $($crate::json!($elem)),* ])
    };
    ({ $($key:literal : $val:tt),* $(,)? }) => {
        $crate::Value::Object(vec![ $(($key.to_string(), $crate::json!($val))),* ])
    };
    ($other:expr) => { $crate::to_value(&$other) };
}

// ---- writer ----

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            write_seq(out, items.iter(), indent, depth, ('[', ']'), |o, x, d| {
                write_value(o, x, indent, d)
            })
        }
        Value::Object(fields) => {
            write_seq(out, fields.iter(), indent, depth, ('{', '}'), |o, (k, x), d| {
                write_string(o, k);
                o.push(':');
                if indent.is_some() {
                    o.push(' ');
                }
                write_value(o, x, indent, d);
            })
        }
    }
}

fn write_seq<T>(
    out: &mut String,
    items: impl ExactSizeIterator<Item = T>,
    indent: Option<usize>,
    depth: usize,
    brackets: (char, char),
    mut write_item: impl FnMut(&mut String, T, usize),
) {
    out.push(brackets.0);
    let n = items.len();
    for (i, item) in items.enumerate() {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        write_item(out, item, depth + 1);
        if i + 1 < n {
            out.push(',');
        }
    }
    if n > 0 {
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * depth));
        }
    }
    out.push(brackets.1);
}

fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() <= 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(Error(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null", Value::Null),
            Some(b't') => self.eat_literal("true", Value::Bool(true)),
            Some(b'f') => self.eat_literal("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error(format!("unexpected {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error(format!("expected `,` or `]` at byte {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.parse_value()?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(fields));
                }
                _ => return Err(Error(format!("expected `,` or `}}` at byte {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error("invalid UTF-8 in string".into()))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error("unterminated escape".into()))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error("truncated \\u escape".into()))?;
                            let cp = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error("invalid \\u escape".into()))?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            out.push(char::from_u32(cp).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error("unterminated string".into())),
            }
        }
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')) {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| Error(format!("invalid number `{text}` at byte {start}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_compact() {
        let v = json!({
            "name": "ApplyGateH_Kernel",
            "nested": { "xs": [1, 2.5, (-3)], "flag": true, "nothing": null }
        });
        let s = to_string(&v).unwrap();
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn roundtrip_pretty() {
        let v = json!({ "a": [1, 2], "b": "x\"y\\z\nw" });
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains('\n'));
        let back: Value = from_str(&s).unwrap();
        assert_eq!(v, back);
    }

    #[test]
    fn numbers_preserve_precision() {
        for n in [0.0, 1.0, -17.0, 1638.4, 0.1, 1e-9, 137438953472.0, std::f64::consts::PI] {
            let s = to_string(&Value::Number(n)).unwrap();
            let back: Value = from_str(&s).unwrap();
            assert_eq!(back, n, "{s}");
        }
    }

    #[test]
    fn integers_print_without_fraction() {
        assert_eq!(
            to_string(&Value::Number(128.0 * 1024.0 * 1024.0 * 1024.0)).unwrap(),
            "137438953472"
        );
    }

    #[test]
    fn parse_errors_are_errors() {
        assert!(from_str::<Value>("{").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
        assert!(from_str::<Value>("nul").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }

    #[test]
    fn index_and_eq_sugar() {
        let v: Value = from_str(r#"{"traceEvents": [{"ph": "X", "ts": 3.0, "pid": 2}]}"#).unwrap();
        let xs = v["traceEvents"].as_array().unwrap();
        assert_eq!(xs.len(), 1);
        assert!(xs[0]["ph"] == "X");
        assert!(xs[0]["ts"] == 3.0);
        assert_eq!(xs[0]["pid"].as_u64(), Some(2));
    }
}
