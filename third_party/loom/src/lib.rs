//! Offline stand-in for [loom]: keeps loom's `model()` + `loom::thread`
//! surface so the model tests read (and would run) unchanged under the
//! real checker, but explores interleavings by *stress*, not by
//! exhaustive schedule enumeration.
//!
//! `model(f)` runs the closure `LOOM_ITERS` times (default 64) on real
//! OS threads; `thread::spawn` prepends a deterministic, per-iteration
//! pseudo-random burst of `yield_now` calls to each spawned closure so
//! successive iterations start the racing threads in different orders.
//! That perturbation is where most short-model interleaving diversity
//! comes from — it is NOT a soundness proof. A bug this harness finds is
//! real; a clean run is evidence, not certainty.
//!
//! The real crate's permutation-exploring `sync` types are not
//! reproduced: models here exercise the workspace's actual primitives
//! directly, so `loom::sync` simply re-exports `std::sync`.
//!
//! [loom]: https://crates.io/crates/loom

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Iterations `model()` runs when the `LOOM_ITERS` environment variable
/// is unset or unparsable.
pub const DEFAULT_ITERS: u64 = 64;

/// Global iteration counter; seeds the per-spawn yield jitter so every
/// iteration (and every spawn within one) perturbs differently.
static ITERATION: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Set while a thread runs inside `model()`, so nested spawns keep
    /// drawing jitter from the same iteration stream.
    static SPAWN_SALT: Cell<u64> = const { Cell::new(0) };
}

/// Run `f` repeatedly under schedule perturbation. Panics propagate to
/// the caller (same contract as real loom: a failed iteration fails the
/// model), with the iteration number attached via a wrapping message.
pub fn model<F>(f: F)
where
    F: Fn() + Send + Sync + 'static,
{
    let iters = std::env::var("LOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        ITERATION.store(i.wrapping_mul(0x9e37_79b9_7f4a_7c15).wrapping_add(i), Ordering::Relaxed);
        SPAWN_SALT.with(|s| s.set(1));
        f();
    }
}

pub mod thread {
    use std::sync::atomic::Ordering;

    pub use std::thread::{yield_now, JoinHandle};

    /// `std::thread::spawn`, plus a short deterministic burst of yields
    /// before the closure body so racing threads enter their critical
    /// sections in a different order each model iteration.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let salt = super::SPAWN_SALT.with(|s| {
            let v = s.get();
            s.set(v.wrapping_add(1));
            v
        });
        let jitter = splitmix(super::ITERATION.load(Ordering::Relaxed).wrapping_add(salt)) % 8;
        std::thread::spawn(move || {
            for _ in 0..jitter {
                yield_now();
            }
            f()
        })
    }

    fn splitmix(mut x: u64) -> u64 {
        x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        x ^ (x >> 31)
    }
}

pub mod sync {
    //! Re-exports of the real primitives: the stress harness runs the
    //! workspace's actual lock/atomic code rather than modeled stand-ins.
    pub use std::sync::{atomic, Arc, Condvar, Mutex, RwLock};
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn model_runs_the_default_iteration_count() {
        let runs = Arc::new(AtomicU64::new(0));
        let counter = runs.clone();
        super::model(move || {
            counter.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed) % super::DEFAULT_ITERS, 0);
        assert!(runs.load(Ordering::Relaxed) >= super::DEFAULT_ITERS);
    }

    #[test]
    fn spawned_threads_run_and_join() {
        super::model(|| {
            let total = Arc::new(AtomicU64::new(0));
            let handles: Vec<_> = (0..4)
                .map(|i| {
                    let total = total.clone();
                    super::thread::spawn(move || {
                        total.fetch_add(i, Ordering::Relaxed);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(total.load(Ordering::Relaxed), 6);
        });
    }
}
